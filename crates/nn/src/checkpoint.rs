//! Checkpointing: serialize network weights to a compact self-describing
//! byte format.
//!
//! The format is intentionally simple (no serde_json dependency): a small
//! header followed by a flat little-endian `f32` parameter dump, framed
//! with [`bytes`]. Architectures are *not* stored — a checkpoint can only
//! be loaded into a network with the identical layer structure, which is
//! verified via a parameter-shape fingerprint.

use crate::net::Sequential;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying an MRSch checkpoint.
pub const MAGIC: &[u8; 4] = b"MRS1";

/// Errors produced when loading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Data did not start with [`MAGIC`].
    BadMagic,
    /// Buffer ended before the declared payload.
    Truncated,
    /// The checkpoint's shape fingerprint does not match the target
    /// network's architecture.
    ShapeMismatch {
        /// Fingerprint stored in the checkpoint.
        expected: u64,
        /// Fingerprint of the network being loaded into.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an MRSch checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ShapeMismatch { expected, actual } => write!(
                f,
                "checkpoint fingerprint {expected:#x} does not match network {actual:#x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a fingerprint over a sequence of parameter shapes.
fn shape_fingerprint(
    visit: &mut impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    visit(&mut |p, _| {
        mix(p.rows() as u64);
        mix(p.cols() as u64);
    });
    h
}

use mrsch_linalg::Matrix;

/// Serialize parameters reachable through a visitor (model-agnostic).
pub fn save_visitor(
    mut visit: impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
) -> Bytes {
    let fp = shape_fingerprint(&mut visit);
    let mut count = 0usize;
    visit(&mut |p, _| count += p.len());
    let mut buf = BytesMut::with_capacity(4 + 8 + 8 + count * 4);
    buf.put_slice(MAGIC);
    buf.put_u64_le(fp);
    buf.put_u64_le(count as u64);
    visit(&mut |p, _| {
        for &v in p.as_slice() {
            buf.put_f32_le(v);
        }
    });
    buf.freeze()
}

/// Load parameters through a visitor; the target model must have the
/// identical parameter-shape sequence.
pub fn load_visitor(
    mut visit: impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
    data: &[u8],
) -> Result<(), CheckpointError> {
    let mut buf = data;
    if buf.len() < 4 + 8 + 8 || &buf[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    buf.advance(4);
    let expected = buf.get_u64_le();
    let actual = shape_fingerprint(&mut visit);
    if expected != actual {
        return Err(CheckpointError::ShapeMismatch { expected, actual });
    }
    let count = buf.get_u64_le() as usize;
    if buf.remaining() < count * 4 {
        return Err(CheckpointError::Truncated);
    }
    let mut err = None;
    visit(&mut |p, _| {
        if err.is_some() {
            return;
        }
        for v in p.as_mut_slice() {
            if buf.remaining() < 4 {
                err = Some(CheckpointError::Truncated);
                return;
            }
            *v = buf.get_f32_le();
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    Ok(())
}

/// Serialize the network's parameters.
pub fn save(net: &mut Sequential) -> Bytes {
    save_visitor(|f| net.visit_params(&mut |p, g| f(p, g)))
}

/// Load parameters into a network with the same architecture.
pub fn load(net: &mut Sequential, data: &[u8]) -> Result<(), CheckpointError> {
    load_visitor(|f| net.visit_params(&mut |p, g| f(p, g)), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use mrsch_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .dense(4, 8, &mut rng)
            .activation(Activation::LeakyRelu(0.01))
            .dense(8, 2, &mut rng)
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let mut a = sample_net(1);
        let mut b = sample_net(2);
        let x = Matrix::filled(3, 4, 0.7);
        assert_ne!(a.forward(&x), b.forward(&x));
        let ckpt = save(&mut a);
        load(&mut b, &ckpt).unwrap();
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut net = sample_net(1);
        assert_eq!(load(&mut net, b"nope"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut a = sample_net(1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut different = Sequential::new().dense(4, 9, &mut rng);
        let ckpt = save(&mut a);
        match load(&mut different, &ckpt) {
            Err(CheckpointError::ShapeMismatch { .. }) => {}
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_rejected() {
        let mut a = sample_net(1);
        let ckpt = save(&mut a);
        let cut = &ckpt[..ckpt.len() - 5];
        assert_eq!(load(&mut a, cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let mut a = sample_net(7);
        let c1 = save(&mut a);
        let c2 = save(&mut a);
        assert_eq!(c1, c2);
    }
}
