//! Hand-rolled neural-network stack for the MRSch reproduction.
//!
//! The paper implements MRSch in TensorFlow; the offline dependency policy
//! of this reproduction excludes `tch`/`burn`, so this crate implements the
//! needed subset from scratch on top of [`mrsch_linalg`]:
//!
//! * [`layer`] — `Dense`, activation layers (leaky-ReLU as in the paper's
//!   state module, plus ReLU/Tanh/Identity), and `Conv1d` (required by the
//!   MLP-vs-CNN ablation of Fig. 3),
//! * [`net`] — a [`net::Sequential`] container with manual backprop,
//! * [`loss`] — mean-squared error with optional element masks (DFP only
//!   regresses the action actually taken),
//! * [`opt`] — SGD-with-momentum and Adam, plus global-norm gradient
//!   clipping,
//! * [`checkpoint`] — serde-based (de)serialization of network weights.
//!
//! Everything is deterministic for a fixed seed: initialization draws from
//! a caller-supplied RNG and no internal operation consults global state.
//!
//! # Example
//!
//! ```
//! use mrsch_linalg::Matrix;
//! use mrsch_nn::net::Sequential;
//! use mrsch_nn::layer::Activation;
//! use mrsch_nn::loss::mse;
//! use mrsch_nn::opt::{Adam, Optimizer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Fit y = 2x on a tiny net.
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new()
//!     .dense(1, 16, &mut rng)
//!     .activation(Activation::LeakyRelu(0.01))
//!     .dense(16, 1, &mut rng);
//! let mut opt = Adam::new(1e-2);
//! let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
//! let y = Matrix::from_vec(4, 1, vec![0.0, 2.0, 4.0, 6.0]);
//! let mut last = f32::MAX;
//! for _ in 0..500 {
//!     let pred = net.forward(&x);
//!     let (l, grad) = mse(&pred, &y);
//!     last = l;
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.step(&mut net);
//! }
//! assert!(last < 1e-2, "loss {last}");
//! ```

pub mod checkpoint;
pub mod layer;
pub mod loss;
pub mod net;
pub mod opt;

pub use layer::{Activation, Conv1d, Dense, Layer};
pub use net::{InferenceScratch, Sequential};
