//! Loss functions.
//!
//! DFP trains by regressing predicted future-measurement *changes* against
//! observed ones, but only for the action that was actually taken and only
//! for temporal offsets that fit inside the episode. [`masked_mse`]
//! implements exactly that: masked elements contribute neither loss nor
//! gradient.

use mrsch_linalg::Matrix;

/// Mean-squared error: `L = mean((pred - target)²)`.
///
/// Returns `(loss, dL/dpred)`. The gradient is `2 (pred - target) / n`
/// where `n` is the total element count, matching the averaged loss.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    let n = pred.len().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// MSE over only the elements where `mask` is nonzero.
///
/// The loss is averaged over the *unmasked* element count, so sparsity of
/// the mask does not shrink the gradient scale. Returns `(loss, grad)`;
/// masked entries of the gradient are exactly zero.
pub fn masked_mse(pred: &Matrix, target: &Matrix, mask: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "masked_mse: shape mismatch");
    assert_eq!(pred.shape(), mask.shape(), "masked_mse: mask shape mismatch");
    let active: f32 = mask.as_slice().iter().filter(|&&m| m != 0.0).count() as f32;
    if active == 0.0 {
        return (0.0, Matrix::zeros(pred.rows(), pred.cols()));
    }
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    {
        let g = grad.as_mut_slice();
        for (i, gv) in g.iter_mut().enumerate().take(pred.len()) {
            if mask.as_slice()[i] != 0.0 {
                let d = pred.as_slice()[i] - target.as_slice()[i];
                loss += d * d;
                *gv = 2.0 * d / active;
            }
        }
    }
    (loss / active, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`, averaged over elements.
///
/// Quadratic near zero, linear in the tails; a drop-in robust alternative
/// used by the scalar-RL baseline's value head.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f32) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "huber: shape mismatch");
    assert!(delta > 0.0, "huber: delta must be positive");
    let n = pred.len().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    {
        let g = grad.as_mut_slice();
        for (i, gv) in g.iter_mut().enumerate().take(pred.len()) {
            let d = pred.as_slice()[i] - target.as_slice()[i];
            if d.abs() <= delta {
                loss += 0.5 * d * d;
                *gv = d / n;
            } else {
                loss += delta * (d.abs() - 0.5 * delta);
                *gv = delta * d.signum() / n;
            }
        }
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (l, g) = mse(&pred, &target);
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-6);
        assert!((g.as_slice()[0] - 1.0).abs() < 1e-6); // 2*1/2
        assert!((g.as_slice()[1] - 2.0).abs() < 1e-6); // 2*2/2
    }

    #[test]
    fn masked_mse_ignores_masked_elements() {
        let pred = Matrix::from_vec(1, 3, vec![1.0, 100.0, 3.0]);
        let target = Matrix::from_vec(1, 3, vec![0.0, 0.0, 3.0]);
        let mask = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let (l, g) = masked_mse(&pred, &target, &mask);
        assert!((l - 0.5).abs() < 1e-6, "only (1-0)² over 2 active elems");
        assert_eq!(g.as_slice()[1], 0.0, "masked gradient must be zero");
        assert!((g.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn masked_mse_all_masked_is_zero() {
        let pred = Matrix::filled(2, 2, 5.0);
        let target = Matrix::zeros(2, 2);
        let mask = Matrix::zeros(2, 2);
        let (l, g) = masked_mse(&pred, &target, &mask);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn huber_quadratic_then_linear() {
        let pred = Matrix::from_vec(1, 2, vec![0.5, 10.0]);
        let target = Matrix::zeros(1, 2);
        let (l, g) = huber(&pred, &target, 1.0);
        // elem0: 0.5*0.25 = 0.125 ; elem1: 1*(10-0.5) = 9.5 ; avg = 4.8125
        assert!((l - 4.8125).abs() < 1e-5);
        assert!((g.as_slice()[0] - 0.25).abs() < 1e-6);
        assert!((g.as_slice()[1] - 0.5).abs() < 1e-6); // clipped to delta/n
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = Matrix::from_vec(2, 2, vec![0.3, -0.7, 1.2, 0.0]);
        let target = Matrix::from_vec(2, 2, vec![0.0, 0.5, 1.0, -1.0]);
        let (_, g) = mse(&pred, &target);
        let eps = 1e-3;
        for i in 0..4 {
            let mut p = pred.clone();
            p.as_mut_slice()[i] += eps;
            let (lp, _) = mse(&p, &target);
            let mut m = pred.clone();
            m.as_mut_slice()[i] -= eps;
            let (lm, _) = mse(&m, &target);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((g.as_slice()[i] - numeric).abs() < 1e-3);
        }
    }
}
