//! First-order optimizers.
//!
//! Optimizers own per-parameter state (momentum / Adam moments) keyed by
//! the stable visit order of [`Sequential::visit_params`], so one optimizer
//! must stay paired with one network for its lifetime.

use crate::net::Sequential;
use mrsch_linalg::Matrix;

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Apply one update step using the gradients currently accumulated in
    /// `net`, then leave the gradients untouched (callers typically call
    /// `net.zero_grad()` before the next backward pass).
    fn step(&mut self, net: &mut Sequential);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "Sgd: learning rate must be positive");
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Enable classical momentum (`v = β v + g; p -= lr v`).
    pub fn momentum(mut self, beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "Sgd: momentum must be in [0,1)");
        self.momentum = beta;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential) {
        let lr = self.lr;
        let beta = self.momentum;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        net.visit_params(&mut |p, g| {
            if beta == 0.0 {
                p.axpy(-lr, g);
            } else {
                if velocity.len() <= idx {
                    velocity.push(Matrix::zeros(g.rows(), g.cols()));
                }
                let v = &mut velocity[idx];
                v.scale_assign(beta);
                v.add_assign(g);
                p.axpy(-lr, v);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with default `β1 = 0.9`, `β2 = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "Adam: learning rate must be positive");
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Override the moment decay rates.
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam step over an arbitrary parameter collection.
    ///
    /// `visit` must call the provided callback once per `(param, grad)`
    /// pair, in an order that is stable across calls (the optimizer's
    /// moment buffers are keyed by visit order). This is how multi-subnet
    /// models (e.g. the DFP network) share one optimizer.
    pub fn step_visitor(
        &mut self,
        mut visit: impl FnMut(&mut dyn FnMut(&mut Matrix, &mut Matrix)),
    ) {
        self.t += 1;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let m_store = &mut self.m;
        let v_store = &mut self.v;
        let mut idx = 0usize;
        visit(&mut |p, g| {
            if m_store.len() <= idx {
                m_store.push(Matrix::zeros(g.rows(), g.cols()));
                v_store.push(Matrix::zeros(g.rows(), g.cols()));
            }
            let m = &mut m_store[idx];
            let v = &mut v_store[idx];
            let (ps, gs) = (p.as_mut_slice(), g.as_slice());
            let (ms, vs) = (m.as_mut_slice(), v.as_mut_slice());
            for i in 0..ps.len() {
                ms[i] = b1 * ms[i] + (1.0 - b1) * gs[i];
                vs[i] = b2 * vs[i] + (1.0 - b2) * gs[i] * gs[i];
                let m_hat = ms[i] / bc1;
                let v_hat = vs[i] / bc2;
                ps[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential) {
        self.step_visitor(|f| net.visit_params(&mut |p, g| f(p, g)));
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Exponential learning-rate decay helper: `lr_t = lr_0 * rate^t`.
///
/// The paper decays its ε-greedy exploration at 0.995 per episode; the
/// same schedule shape is offered for learning rates.
#[derive(Clone, Copy, Debug)]
pub struct ExpDecay {
    initial: f32,
    rate: f32,
    floor: f32,
}

impl ExpDecay {
    /// Create a schedule starting at `initial`, multiplying by `rate` each
    /// step, never dropping below `floor`.
    pub fn new(initial: f32, rate: f32, floor: f32) -> Self {
        assert!(initial > 0.0 && rate > 0.0 && rate <= 1.0 && floor >= 0.0);
        Self { initial, rate, floor }
    }

    /// Value at step `t`.
    pub fn at(&self, t: u64) -> f32 {
        (self.initial * self.rate.powi(t.min(i32::MAX as u64) as i32)).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::loss::mse;
    use mrsch_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new().dense(1, 1, &mut rng)
    }

    fn train(net: &mut Sequential, opt: &mut dyn Optimizer, iters: usize) -> f32 {
        train_scheduled(net, opt, iters, None)
    }

    fn train_scheduled(
        net: &mut Sequential,
        opt: &mut dyn Optimizer,
        iters: usize,
        schedule: Option<ExpDecay>,
    ) -> f32 {
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let y = Matrix::from_vec(3, 1, vec![2.0, 4.0, 6.0]);
        let mut last = f32::MAX;
        for t in 0..iters {
            if let Some(s) = schedule {
                opt.set_learning_rate(s.at(t as u64));
            }
            let pred = net.forward(&x);
            let (l, g) = mse(&pred, &y);
            last = l;
            net.zero_grad();
            net.backward(&g);
            opt.step(net);
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_problem() {
        let mut net = quadratic_net(1);
        let mut opt = Sgd::new(0.02);
        assert!(train(&mut net, &mut opt, 2500) < 1e-4);
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let mut a = quadratic_net(2);
        let mut b = a.clone();
        let mut plain = Sgd::new(0.01);
        let mut with_mom = Sgd::new(0.01).momentum(0.9);
        let loss_plain = train(&mut a, &mut plain, 60);
        let loss_mom = train(&mut b, &mut with_mom, 60);
        assert!(
            loss_mom < loss_plain,
            "momentum {loss_mom} should beat plain {loss_plain} at equal budget"
        );
    }

    #[test]
    fn adam_converges_on_linear_problem() {
        // Adam's constant-magnitude steps (~lr until v decays) make the
        // tail of this descent slow: at a fixed lr the reference needs
        // ~2000 iterations to pass 1e-4. The ExpDecay schedule the DFP
        // trainer wires by default damps the tail, cutting the budget to
        // 500 (this stream lands near 4e-6 — ample margin).
        let mut net = quadratic_net(3);
        let mut opt = Adam::new(0.1);
        let schedule = ExpDecay::new(0.1, 0.999, 1e-3);
        assert!(train_scheduled(&mut net, &mut opt, 500, Some(schedule)) < 1e-4);
    }

    #[test]
    fn scheduled_adam_beats_the_old_constant_config_at_equal_budget() {
        // The pre-schedule test configuration (constant lr = 0.05) needs
        // ~2000 iterations for 1e-4; at the new 500-iteration budget it
        // is still orders of magnitude behind the scheduled run.
        let loss_old = {
            let mut net = quadratic_net(3);
            let mut opt = Adam::new(0.05);
            train(&mut net, &mut opt, 500)
        };
        let loss_sched = {
            let mut net = quadratic_net(3);
            let mut opt = Adam::new(0.1);
            train_scheduled(&mut net, &mut opt, 500, Some(ExpDecay::new(0.1, 0.999, 1e-3)))
        };
        assert!(loss_old > 1e-4, "old config misses the bar at 500: {loss_old}");
        assert!(
            loss_sched < loss_old / 10.0,
            "schedule should dominate: scheduled {loss_sched} vs old {loss_old}"
        );
    }

    #[test]
    fn adam_handles_nonconvex_net() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new()
            .dense(2, 8, &mut rng)
            .activation(Activation::Tanh)
            .dense(8, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut last = f32::MAX;
        for _ in 0..2000 {
            let pred = net.forward(&x);
            let (l, g) = mse(&pred, &y);
            last = l;
            net.zero_grad();
            net.backward(&g);
            opt.step(&mut net);
        }
        assert!(last < 5e-2, "XOR via Adam: {last}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn exp_decay_schedule() {
        let s = ExpDecay::new(1.0, 0.995, 0.05);
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(1) - 0.995).abs() < 1e-6);
        assert!(s.at(10_000) >= 0.05, "floor must hold");
        assert!(s.at(100) < s.at(10));
    }

    #[test]
    fn adam_step_counter_increments() {
        let mut net = quadratic_net(5);
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.steps(), 0);
        train(&mut net, &mut opt, 3);
        assert_eq!(opt.steps(), 3);
    }
}
