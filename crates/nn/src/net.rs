//! Sequential network container with manual backprop.

use crate::layer::{Activation, Conv1d, Dense, Layer};
use mrsch_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Reusable buffers for allocation-free inference.
///
/// A forward pass ping-pongs between two activation buffers (plus two
/// im2col side buffers for convolution layers), so after warm-up a
/// [`Sequential::forward_inference_scratch`] call performs **zero heap
/// allocations** — the decision-serving hot path requirement. Buffers
/// grow to the high-water mark of whatever shapes pass through and stay
/// there.
#[derive(Debug)]
pub struct InferenceScratch {
    /// Ping-pong activation buffers.
    bufs: [Matrix; 2],
    /// im2col patch buffer (Conv1d layers only).
    patches: Matrix,
    /// Position-major convolution scores (Conv1d layers only).
    scores: Matrix,
}

impl InferenceScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            bufs: [Matrix::zeros(0, 0), Matrix::zeros(0, 0)],
            patches: Matrix::zeros(0, 0),
            scores: Matrix::zeros(0, 0),
        }
    }
}

impl Default for InferenceScratch {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread scratch backing [`Sequential::forward_inference`], so the
    /// allocating signature keeps its zero-per-layer-allocation behavior
    /// without threading a scratch handle through every caller.
    static INFERENCE_SCRATCH: RefCell<InferenceScratch> = RefCell::new(InferenceScratch::new());
}

/// A feed-forward stack of [`Layer`]s applied in order.
///
/// `forward` caches per-layer state; `backward` must be called with the
/// loss gradient w.r.t. the network output produced by the *most recent*
/// forward call.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// An empty network (identity function).
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Append an arbitrary layer.
    pub fn push(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Append a He-initialized dense layer.
    pub fn dense<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        self.push(Layer::Dense(Dense::new(fan_in, fan_out, rng)))
    }

    /// Append an activation layer.
    pub fn activation(self, func: Activation) -> Self {
        self.push(Layer::Activation { func, cached_in: None, cached_out: None })
    }

    /// Append a valid 1-D convolution layer.
    #[allow(clippy::too_many_arguments)]
    pub fn conv1d<R: Rng + ?Sized>(
        self,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        length: usize,
        rng: &mut R,
    ) -> Self {
        self.push(Layer::Conv1d(Conv1d::new(
            in_channels,
            out_channels,
            kernel,
            stride,
            length,
            rng,
        )))
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass over a `(batch, features)` input, caching intermediate
    /// state for `backward`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Forward pass without caching backward state: usable through a
    /// shared reference and bit-identical to [`Sequential::forward`].
    /// This is what lets a frozen policy network act from many threads
    /// at once without per-thread copies.
    ///
    /// Internally rides a per-thread [`InferenceScratch`], so after
    /// warm-up the only allocation left is the clone of the final output
    /// row. Latency-critical callers that own a scratch can use
    /// [`Sequential::forward_inference_scratch`] to drop that one too.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        INFERENCE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => self.forward_inference_scratch(x, &mut scratch).clone(),
            // Re-entrant call (same thread, scratch already borrowed):
            // fall back to a throwaway scratch. Identical arithmetic.
            Err(_) => {
                let mut scratch = InferenceScratch::new();
                self.forward_inference_scratch(x, &mut scratch).clone()
            }
        })
    }

    /// [`Sequential::forward_inference`] into caller-owned scratch
    /// buffers: zero heap allocations once the scratch is warm, and
    /// bit-identical output (the returned reference points into the
    /// scratch and is valid until its next use).
    ///
    /// Two fusions ride along without changing a single output bit:
    /// a single-row `Dense` uses the fused gemv kernel with the bias in
    /// its epilogue, and a `Dense` + `Relu` pair on a single row folds
    /// the rectifier into that same epilogue (the epilogue performs the
    /// exact `+ bias` / `max(0.0)` scalar ops of the unfused sequence).
    pub fn forward_inference_scratch<'a>(
        &self,
        x: &Matrix,
        scratch: &'a mut InferenceScratch,
    ) -> &'a Matrix {
        let InferenceScratch { bufs, patches, scores } = scratch;
        let (front, back) = bufs.split_at_mut(1);
        let mut cur = &mut front[0];
        let mut next = &mut back[0];
        cur.copy_from(x);
        let mut i = 0;
        while i < self.layers.len() {
            match &self.layers[i] {
                Layer::Dense(d) => {
                    let fuse_relu = cur.rows() == 1
                        && matches!(
                            self.layers.get(i + 1),
                            Some(Layer::Activation { func: Activation::Relu, .. })
                        );
                    d.forward_inference_into(cur, next, fuse_relu);
                    std::mem::swap(&mut cur, &mut next);
                    if fuse_relu {
                        i += 1; // the ReLU was folded into the gemv epilogue
                    }
                }
                Layer::Activation { func, .. } => {
                    let f = *func;
                    cur.map_inplace(|v| f.apply(v));
                }
                Layer::Conv1d(c) => {
                    c.forward_inference_into(cur, next, patches, scores);
                    std::mem::swap(&mut cur, &mut next);
                }
            }
            i += 1;
        }
        cur
    }

    /// Run `B` independent feature rows through the network as one
    /// packed `(B, features)` batch.
    ///
    /// Bit-identical to `B` separate single-row
    /// [`Sequential::forward_inference`] calls: the GEMM determinism
    /// contract makes every output element a per-(row, column) `mul_add`
    /// chain independent of the batch extent, and activations are
    /// element-wise. This is what lets the serving micro-batcher coalesce
    /// concurrent decision requests without changing any decision.
    ///
    /// # Panics
    /// Panics when `rows` is empty or the rows have unequal widths.
    pub fn forward_inference_batched(&self, rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "forward_inference_batched: empty batch");
        let cols = rows[0].len();
        let mut x = Matrix::zeros(rows.len(), cols);
        for (r, src) in rows.iter().enumerate() {
            assert_eq!(src.len(), cols, "forward_inference_batched: ragged row {r}");
            x.row_mut(r).copy_from_slice(src);
        }
        self.forward_inference(&x)
    }

    /// Backward pass. `grad_out` is dLoss/dOutput; returns dLoss/dInput.
    ///
    /// Parameter gradients accumulate (are *not* zeroed first), enabling
    /// multi-head gradient accumulation as used by the DFP module network.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    /// Zero all accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visit every `(param, grad)` pair across layers in a stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&mut self) -> f32 {
        let mut acc = 0.0f32;
        self.visit_params(&mut |_, g| acc += g.norm_sq());
        acc.sqrt()
    }

    /// Scale all gradients so their global norm is at most `max_norm`.
    ///
    /// Returns the pre-clip norm. Standard stabilizer for RL regression
    /// targets with occasional large errors.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            self.visit_params(&mut |_, g| g.scale_assign(k));
        }
        norm
    }

    /// Copy parameters (not gradients) from another network with identical
    /// architecture. Used to refresh DFP/RL target networks.
    pub fn copy_params_from(&mut self, other: &Sequential) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "copy_params_from: layer count mismatch"
        );
        let mut src: Vec<Matrix> = Vec::new();
        let mut other = other.clone();
        other.visit_params(&mut |p, _| src.push(p.clone()));
        let mut idx = 0usize;
        self.visit_params(&mut |p, _| {
            *p = src[idx].clone();
            idx += 1;
        });
        assert_eq!(idx, src.len(), "copy_params_from: parameter count mismatch");
    }

    /// Check every parameter is finite. Training invariant.
    pub fn all_finite(&mut self) -> bool {
        let mut ok = true;
        self.visit_params(&mut |p, _| ok &= p.all_finite());
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::opt::{Adam, Optimizer, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Matrix, Matrix) {
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        (x, y)
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Sequential::new();
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(net.forward(&x), x);
    }

    #[test]
    fn learns_xor_with_adam() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Sequential::new()
            .dense(2, 16, &mut rng)
            .activation(Activation::LeakyRelu(0.01))
            .dense(16, 1, &mut rng);
        let mut opt = Adam::new(5e-2);
        let (x, y) = xor_data();
        let mut last = f32::MAX;
        for _ in 0..800 {
            let pred = net.forward(&x);
            let (l, g) = mse(&pred, &y);
            last = l;
            net.zero_grad();
            net.backward(&g);
            opt.step(&mut net);
        }
        assert!(last < 1e-2, "XOR loss did not converge: {last}");
    }

    #[test]
    fn learns_linear_map_with_sgd() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new().dense(2, 1, &mut rng);
        let mut opt = Sgd::new(0.05).momentum(0.9);
        // y = 3a - 2b
        let x = Matrix::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 2., 1.]);
        let y = Matrix::from_vec(4, 1, vec![3., -2., 1., 4.]);
        let mut last = f32::MAX;
        for _ in 0..500 {
            let pred = net.forward(&x);
            let (l, g) = mse(&pred, &y);
            last = l;
            net.zero_grad();
            net.backward(&g);
            opt.step(&mut net);
        }
        assert!(last < 1e-4, "linear fit loss {last}");
    }

    #[test]
    fn whole_network_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new()
            .dense(3, 5, &mut rng)
            .activation(Activation::Tanh)
            .dense(5, 2, &mut rng);
        let x = mrsch_linalg::init::gaussian_matrix(&mut rng, 2, 3, 1.0);
        let y = net.forward(&x);
        net.zero_grad();
        net.backward(&y); // loss = 0.5 ||out||²
        // Finite-difference the very first weight.
        let mut analytic = None;
        net.visit_params(&mut |_, g| {
            if analytic.is_none() {
                analytic = Some(g.get(0, 0));
            }
        });
        let analytic = analytic.unwrap();
        let eps = 1e-3;
        let perturb = |delta: f32, net: &Sequential| -> f32 {
            let mut n = net.clone();
            let mut first = true;
            n.visit_params(&mut |p, _| {
                if first {
                    p.set(0, 0, p.get(0, 0) + delta);
                    first = false;
                }
            });
            0.5 * n.forward(&x).norm_sq()
        };
        let numeric = (perturb(eps, &net) - perturb(-eps, &net)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn forward_inference_is_bit_identical_to_forward() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Sequential::new()
            .dense(6, 9, &mut rng)
            .activation(Activation::LeakyRelu(0.01))
            .conv1d(1, 2, 3, 2, 9, &mut rng)
            .activation(Activation::Tanh)
            .dense(8, 3, &mut rng);
        let x = mrsch_linalg::init::gaussian_matrix(&mut rng, 4, 6, 1.0);
        let cached = net.forward(&x);
        let shared = net.forward_inference(&x);
        assert_eq!(cached, shared, "inference path must not drift from training path");
        // Single-row inputs take the fused gemv path: still bit-identical.
        let x1 = mrsch_linalg::init::gaussian_matrix(&mut rng, 1, 6, 1.0);
        assert_eq!(
            net.forward(&x1),
            net.forward_inference(&x1),
            "single-row (gemv) inference must not drift from training path"
        );
    }

    /// The Dense+ReLU epilogue fusion and the explicit-scratch entry point
    /// must both reproduce the layer-by-layer path bit for bit, across
    /// repeated calls that reuse (and re-shape) the same scratch buffers.
    #[test]
    fn scratch_inference_bit_identical_and_reusable() {
        let mut rng = StdRng::seed_from_u64(21);
        let net = Sequential::new()
            .dense(5, 12, &mut rng)
            .activation(Activation::Relu) // fused into the gemv epilogue on 1-row inputs
            .dense(12, 7, &mut rng)
            .activation(Activation::LeakyRelu(0.01))
            .dense(7, 4, &mut rng);
        let conv_net = Sequential::new()
            .dense(5, 9, &mut rng)
            .activation(Activation::Relu)
            .conv1d(1, 2, 3, 2, 9, &mut rng)
            .activation(Activation::Tanh)
            .dense(8, 3, &mut rng);
        let mut scratch = InferenceScratch::new();
        for rows in [1usize, 3, 1, 8] {
            let x = mrsch_linalg::init::gaussian_matrix(&mut rng, rows, 5, 1.0);
            for net in [&net, &conv_net] {
                let want = net.forward_inference(&x);
                let got = net.forward_inference_scratch(&x, &mut scratch);
                assert_eq!(got.shape(), want.shape());
                for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "scratch path drifted (rows={rows})");
                }
            }
        }
    }

    /// One packed `(B, features)` batch must decide exactly like `B`
    /// independent single-row calls — the micro-batching correctness
    /// contract.
    #[test]
    fn batched_inference_bit_identical_to_sequential_rows() {
        let mut rng = StdRng::seed_from_u64(22);
        let net = Sequential::new()
            .dense(6, 11, &mut rng)
            .activation(Activation::Relu)
            .dense(11, 4, &mut rng);
        let x = mrsch_linalg::init::gaussian_matrix(&mut rng, 7, 6, 1.0);
        let rows: Vec<&[f32]> = (0..x.rows()).map(|r| x.row(r)).collect();
        let batched = net.forward_inference_batched(&rows);
        assert_eq!(batched.shape(), (7, 4));
        for (r, row) in rows.iter().enumerate() {
            let single = net.forward_inference(&Matrix::from_vec(1, 6, row.to_vec()));
            for (a, b) in batched.row(r).iter().zip(single.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "batched row {r} drifted from single-row call");
            }
        }
    }

    #[test]
    fn clip_grad_norm_bounds_gradients() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Sequential::new().dense(4, 4, &mut rng);
        let x = Matrix::filled(8, 4, 10.0);
        let y = net.forward(&x);
        net.zero_grad();
        net.backward(&y.scale(100.0));
        let pre = net.clip_grad_norm(1.0);
        assert!(pre > 1.0);
        assert!((net.grad_norm() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn copy_params_from_transfers_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut a = Sequential::new().dense(3, 3, &mut rng).activation(Activation::Relu);
        let mut b = Sequential::new().dense(3, 3, &mut rng).activation(Activation::Relu);
        let x = Matrix::filled(1, 3, 1.0);
        assert_ne!(a.forward(&x), b.forward(&x));
        b.copy_params_from(&a);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = StdRng::seed_from_u64(10);
        let net = Sequential::new()
            .dense(10, 20, &mut rng)
            .activation(Activation::Relu)
            .dense(20, 5, &mut rng);
        assert_eq!(net.param_count(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn gradient_accumulation_across_backward_calls() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new().dense(2, 2, &mut rng);
        let x = Matrix::filled(1, 2, 1.0);
        let g = Matrix::filled(1, 2, 1.0);
        net.forward(&x);
        net.zero_grad();
        net.backward(&g);
        let norm_once = net.grad_norm();
        net.forward(&x);
        net.backward(&g); // no zero_grad: should accumulate
        let norm_twice = net.grad_norm();
        assert!((norm_twice - 2.0 * norm_once).abs() < 1e-4);
    }
}
