//! Network layers with manual forward/backward passes.
//!
//! Each layer caches whatever it needs from the forward pass (inputs or
//! pre-activations) so that `backward` can be called immediately after.
//! Parameter gradients accumulate into `grad_*` buffers and are consumed by
//! the optimizers in [`crate::opt`].
//!
//! Every contraction routes through the packed GEMM micro-kernel in
//! `mrsch_linalg`: `Dense` calls the fused entry points directly
//! (`matmul` forward, `matmul_at_b`/`matmul_a_bt` backward — no
//! transpose is ever materialized), and `Conv1d` lowers to im2col +
//! GEMM. Results stay bit-reproducible across thread counts; see the
//! `mrsch_linalg::gemm` determinism contract.

use mrsch_linalg::{
    gemv, init, matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b, matmul_into, Matrix,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Element-wise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(x, alpha * x)` — the paper's state module uses leaky rectifiers.
    LeakyRelu(f32),
    /// `max(x, 0)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through (useful for testing containers).
    Identity,
}

impl Activation {
    /// Apply the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::LeakyRelu(a) => {
                if x >= 0.0 {
                    x
                } else {
                    a * x
                }
            }
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative w.r.t. the input, expressed in terms of input `x` and
    /// output `y = apply(x)` (tanh uses `y`, rectifiers use `x`).
    #[inline]
    pub fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::LeakyRelu(a) => {
                if x >= 0.0 {
                    1.0
                } else {
                    a
                }
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }
}

/// Fully-connected layer: `y = x · W + b`.
///
/// `W` has shape `(in, out)`; inputs are `(batch, in)` row-major.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `(fan_in, fan_out)`.
    pub w: Matrix,
    /// Bias row vector, `(1, fan_out)`.
    pub b: Matrix,
    /// Accumulated weight gradient.
    pub grad_w: Matrix,
    /// Accumulated bias gradient.
    pub grad_b: Matrix,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Dense {
    /// He-normal initialized dense layer (appropriate for the leaky-ReLU
    /// stacks used throughout MRSch).
    pub fn new<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        Self {
            w: init::he_normal(rng, fan_in, fan_out),
            b: Matrix::zeros(1, fan_out),
            grad_w: Matrix::zeros(fan_in, fan_out),
            grad_b: Matrix::zeros(1, fan_out),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.forward_inference(x);
        self.cached_input = Some(x.clone());
        y
    }

    /// Forward pass without caching: usable through a shared reference,
    /// bit-identical to [`Dense::forward`] (same operations, same order).
    fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = matmul(x, &self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Allocation-free forward into a caller-owned buffer.
    ///
    /// A single input row rides the fused gemv kernel with the bias (and
    /// optionally ReLU) folded into its epilogue; larger batches use
    /// `matmul_into` plus the broadcast. Both are bit-identical to
    /// [`Dense::forward_inference`] (optionally followed by a ReLU
    /// activation layer when `fuse_relu` is set) — the gemv epilogue
    /// performs the exact same `+ bias` / `max(0.0)` scalar ops.
    pub(crate) fn forward_inference_into(&self, x: &Matrix, out: &mut Matrix, fuse_relu: bool) {
        if x.rows() == 1 {
            out.reset_to_zeros(1, self.fan_out());
            let ep = if fuse_relu {
                gemv::Epilogue::BiasRelu(self.b.as_slice())
            } else {
                gemv::Epilogue::Bias(self.b.as_slice())
            };
            gemv::gemv_into(out.as_mut_slice(), x.row(0), &self.w, ep);
        } else {
            matmul_into(x, &self.w, out);
            out.add_row_broadcast(&self.b);
            if fuse_relu {
                out.map_inplace(|v| v.max(0.0));
            }
        }
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("Dense::backward called before forward");
        // dW += xᵀ · dY ; db += Σ_rows dY ; dX = dY · Wᵀ
        self.grad_w.add_assign(&matmul_at_b(x, grad_out));
        self.grad_b.add_assign(&grad_out.sum_rows());
        matmul_a_bt(grad_out, &self.w)
    }
}

/// 1-D convolution over a flat `(batch, in_channels * length)` signal.
///
/// Used only by the CNN state-module ablation (Fig. 3). The layout is
/// channel-major: element `(c, t)` of a sample lives at `c * length + t`.
/// `stride >= 1`, no padding (valid convolution), output length
/// `out_len = (length - kernel) / stride + 1`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Conv1d {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels (filters).
    pub out_channels: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Input signal length per channel.
    pub length: usize,
    /// Filter bank, shape `(out_channels, in_channels * kernel)`.
    pub w: Matrix,
    /// Per-filter bias, `(1, out_channels)`.
    pub b: Matrix,
    /// Accumulated filter gradient.
    pub grad_w: Matrix,
    /// Accumulated bias gradient.
    pub grad_b: Matrix,
    /// im2col patches saved by `forward` — the backward pass contracts
    /// against these directly, so the input itself is never re-gathered.
    #[serde(skip)]
    cached_patches: Option<Matrix>,
}

impl Conv1d {
    /// He-normal initialized valid 1-D convolution.
    ///
    /// # Panics
    /// Panics when `kernel > length` or `stride == 0`.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        length: usize,
        rng: &mut R,
    ) -> Self {
        assert!(stride >= 1, "Conv1d: stride must be >= 1");
        assert!(kernel <= length, "Conv1d: kernel {kernel} > length {length}");
        let fan_in = in_channels * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            length,
            w: init::he_normal(rng, out_channels, fan_in),
            b: Matrix::zeros(1, out_channels),
            grad_w: Matrix::zeros(out_channels, fan_in),
            grad_b: Matrix::zeros(1, out_channels),
            cached_patches: None,
        }
    }

    /// Output length per channel.
    pub fn out_len(&self) -> usize {
        (self.length - self.kernel) / self.stride + 1
    }

    /// Flat output width (`out_channels * out_len`), channel-major.
    pub fn out_width(&self) -> usize {
        self.out_channels * self.out_len()
    }

    /// Flat input width this layer expects.
    pub fn in_width(&self) -> usize {
        self.in_channels * self.length
    }

    fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_width(),
            "Conv1d: input width {} != expected {}",
            x.cols(),
            self.in_width()
        );
        let patches = self.im2col(x);
        let y = self.apply_filters(&patches, x.rows());
        self.cached_patches = Some(patches);
        y
    }

    /// Gather the convolution windows into an im2col patch matrix:
    /// row `s * out_len + t` holds the `(ic, k)`-ordered window of
    /// sample `s` at output position `t`, matching the filter-bank
    /// layout so the convolution becomes one GEMM.
    fn im2col(&self, x: &Matrix) -> Matrix {
        let mut patches = Matrix::zeros(0, 0);
        self.im2col_into(x, &mut patches);
        patches
    }

    /// [`Conv1d::im2col`] into a caller-owned buffer (reused across calls
    /// by the inference scratch arena).
    pub(crate) fn im2col_into(&self, x: &Matrix, patches: &mut Matrix) {
        let batch = x.rows();
        let out_len = self.out_len();
        patches.reset_to_zeros(batch * out_len, self.in_channels * self.kernel);
        for s in 0..batch {
            let row = x.row(s);
            for t in 0..out_len {
                let start = t * self.stride;
                let dst = patches.row_mut(s * out_len + t);
                for ic in 0..self.in_channels {
                    let sig = &row[ic * self.length..(ic + 1) * self.length];
                    dst[ic * self.kernel..(ic + 1) * self.kernel]
                        .copy_from_slice(&sig[start..start + self.kernel]);
                }
            }
        }
    }

    /// Forward pass without caching: usable through a shared reference,
    /// bit-identical to [`Conv1d::forward`] (same operations, same order).
    ///
    /// Runs as im2col + `patches · Wᵀ` so the convolution rides the
    /// packed GEMM micro-kernel instead of a scalar quadruple loop; the
    /// per-element reduction order (`ic`-major, `k`-minor) is exactly
    /// the one the filter loop used.
    fn forward_inference(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_width(),
            "Conv1d: input width {} != expected {}",
            x.cols(),
            self.in_width()
        );
        self.apply_filters(&self.im2col(x), x.rows())
    }

    /// The shared forward contraction: `patches · Wᵀ` plus bias, with
    /// the position-major GEMM rows scattered into the channel-major
    /// output layout.
    fn apply_filters(&self, patches: &Matrix, batch: usize) -> Matrix {
        // (batch·out_len, fan_in) x (out_channels, fan_in)ᵀ
        let scores = matmul_a_bt(patches, &self.w);
        let mut y = Matrix::zeros(batch, self.out_width());
        self.scatter_scores(&scores, batch, &mut y);
        y
    }

    /// The position-major → channel-major output scatter shared by the
    /// allocating and scratch-buffer forward paths. `y` must already be
    /// sized `(batch, out_width)`.
    fn scatter_scores(&self, scores: &Matrix, batch: usize, y: &mut Matrix) {
        let out_len = self.out_len();
        let bias = self.b.as_slice();
        for s in 0..batch {
            let dst = y.row_mut(s);
            for t in 0..out_len {
                let src = scores.row(s * out_len + t);
                for (oc, &v) in src.iter().enumerate() {
                    dst[oc * out_len + t] = bias[oc] + v;
                }
            }
        }
    }

    /// Allocation-free forward into caller-owned buffers: im2col into
    /// `patches`, contract into `scores`, scatter into `out`.
    /// Bit-identical to [`Conv1d::forward_inference`] (same GEMM entry
    /// point, same scatter order).
    pub(crate) fn forward_inference_into(
        &self,
        x: &Matrix,
        out: &mut Matrix,
        patches: &mut Matrix,
        scores: &mut Matrix,
    ) {
        assert_eq!(
            x.cols(),
            self.in_width(),
            "Conv1d: input width {} != expected {}",
            x.cols(),
            self.in_width()
        );
        let batch = x.rows();
        self.im2col_into(x, patches);
        matmul_a_bt_into(patches, &self.w, scores);
        out.reset_to_zeros(batch, self.out_width());
        self.scatter_scores(scores, batch, out);
    }

    /// Backward pass, lowered to the same two GEMM shapes `Dense` uses.
    ///
    /// The channel-major output gradient is first gathered position-major
    /// (`dScores`, the exact transpose of the forward scatter); then
    ///
    /// * `dW += dScoresᵀ · patches`   ([`matmul_at_b`]),
    /// * `dB += column sums of dScores`,
    /// * `dPatches = dScores · W`     ([`matmul`]),
    ///
    /// and `dPatches` scatter-adds back through the im2col map (col2im:
    /// overlapping windows accumulate in increasing-`t` order).
    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let patches = self
            .cached_patches
            .as_ref()
            .expect("Conv1d::backward called before forward");
        let batch = grad_out.rows();
        let out_len = self.out_len();
        let mut d_scores = Matrix::zeros(batch * out_len, self.out_channels);
        for s in 0..batch {
            let gout = grad_out.row(s);
            for t in 0..out_len {
                let dst = d_scores.row_mut(s * out_len + t);
                for (oc, slot) in dst.iter_mut().enumerate() {
                    *slot = gout[oc * out_len + t];
                }
            }
        }
        let dw = matmul_at_b(&d_scores, patches);
        for (acc, &v) in self.grad_w.as_mut_slice().iter_mut().zip(dw.as_slice()) {
            *acc += v;
        }
        for r in 0..d_scores.rows() {
            for (acc, &v) in self.grad_b.as_mut_slice().iter_mut().zip(d_scores.row(r)) {
                *acc += v;
            }
        }
        let d_patches = matmul(&d_scores, &self.w);
        let mut grad_in = Matrix::zeros(batch, self.in_width());
        for s in 0..batch {
            let dst = grad_in.row_mut(s);
            for t in 0..out_len {
                let src = d_patches.row(s * out_len + t);
                let start = t * self.stride;
                for ic in 0..self.in_channels {
                    let gin = &mut dst[ic * self.length..(ic + 1) * self.length];
                    for k in 0..self.kernel {
                        gin[start + k] += src[ic * self.kernel + k];
                    }
                }
            }
        }
        grad_in
    }
}

/// A single network layer.
///
/// Modeled as an enum (rather than trait objects) so networks serialize
/// naturally with serde and clone cheaply for target-network copies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected.
    Dense(Dense),
    /// Element-wise activation. Caches pre- and post-activation values.
    Activation {
        /// The function applied element-wise.
        func: Activation,
        /// Cached forward input (pre-activation).
        #[serde(skip)]
        cached_in: Option<Matrix>,
        /// Cached forward output (post-activation).
        #[serde(skip)]
        cached_out: Option<Matrix>,
    },
    /// Valid 1-D convolution (CNN ablation only).
    Conv1d(Conv1d),
}

impl Layer {
    /// Run the layer forward, caching state for a subsequent backward call.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Activation { func, cached_in, cached_out } => {
                let y = x.map(|v| func.apply(v));
                *cached_in = Some(x.clone());
                *cached_out = Some(y.clone());
                y
            }
            Layer::Conv1d(c) => c.forward(x),
        }
    }

    /// Run the layer forward without caching backward state. Numerically
    /// identical to [`Layer::forward`]; usable through `&self`, so frozen
    /// networks can be shared across threads (e.g. one rollout snapshot
    /// behind an `Arc` instead of a clone per worker).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        match self {
            Layer::Dense(d) => d.forward_inference(x),
            Layer::Activation { func, .. } => x.map(|v| func.apply(v)),
            Layer::Conv1d(c) => c.forward_inference(x),
        }
    }

    /// Propagate `grad_out` backwards, accumulating parameter gradients and
    /// returning the gradient w.r.t. this layer's input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match self {
            Layer::Dense(d) => d.backward(grad_out),
            Layer::Activation { func, cached_in, cached_out } => {
                let x = cached_in.as_ref().expect("Activation backward before forward");
                let y = cached_out.as_ref().expect("Activation backward before forward");
                let mut g = grad_out.clone();
                let gs = g.as_mut_slice();
                for (i, gv) in gs.iter_mut().enumerate() {
                    *gv *= func.derivative(x.as_slice()[i], y.as_slice()[i]);
                }
                g
            }
            Layer::Conv1d(c) => c.backward(grad_out),
        }
    }

    /// Reset accumulated parameter gradients to zero.
    pub fn zero_grad(&mut self) {
        match self {
            Layer::Dense(d) => {
                d.grad_w.scale_assign(0.0);
                d.grad_b.scale_assign(0.0);
            }
            Layer::Conv1d(c) => {
                c.grad_w.scale_assign(0.0);
                c.grad_b.scale_assign(0.0);
            }
            Layer::Activation { .. } => {}
        }
    }

    /// Visit every `(param, grad)` pair in a stable order.
    pub fn visit_params(&mut self, f: &mut impl FnMut(&mut Matrix, &mut Matrix)) {
        match self {
            Layer::Dense(d) => {
                f(&mut d.w, &mut d.grad_w);
                f(&mut d.b, &mut d.grad_b);
            }
            Layer::Conv1d(c) => {
                f(&mut c.w, &mut c.grad_w);
                f(&mut c.b, &mut c.grad_b);
            }
            Layer::Activation { .. } => {}
        }
    }

    /// Number of trainable scalars in this layer.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(d) => d.w.len() + d.b.len(),
            Layer::Conv1d(c) => c.w.len() + c.b.len(),
            Layer::Activation { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn activation_functions() {
        let lr = Activation::LeakyRelu(0.1);
        assert_eq!(lr.apply(2.0), 2.0);
        assert_eq!(lr.apply(-2.0), -0.2);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-9);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
    }

    #[test]
    fn activation_derivatives() {
        let lr = Activation::LeakyRelu(0.1);
        assert_eq!(lr.derivative(2.0, 2.0), 1.0);
        assert_eq!(lr.derivative(-2.0, -0.2), 0.1);
        let y = Activation::Tanh.apply(0.5);
        assert!((Activation::Tanh.derivative(0.5, y) - (1.0 - y * y)).abs() < 1e-9);
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(3, 2, &mut rng);
        d.b = Matrix::row_vector(vec![10.0, 20.0]);
        let x = Matrix::zeros(4, 3);
        let y = d.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        // Zero input -> output equals bias.
        for r in 0..4 {
            assert_eq!(y.row(r), &[10.0, 20.0]);
        }
    }

    /// Finite-difference check of Dense backward.
    #[test]
    fn dense_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = init::rand_x(&mut rng, 2, 3);
        // Loss = 0.5 * ||y||^2, so dL/dy = y.
        let y = d.forward(&x);
        let gin = d.backward(&y);
        let eps = 1e-3f32;
        // Check dL/dw[0][0].
        let analytic = d.grad_w.get(0, 0);
        let mut dp = d.clone();
        dp.w.set(0, 0, dp.w.get(0, 0) + eps);
        let mut dm = d.clone();
        dm.w.set(0, 0, dm.w.get(0, 0) - eps);
        let lp = 0.5 * dp.forward(&x).norm_sq();
        let lm = 0.5 * dm.forward(&x).norm_sq();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "dW analytic {analytic} vs numeric {numeric}"
        );
        // Check dL/dx[0][0].
        let analytic_x = gin.get(0, 0);
        let mut xp = x.clone();
        xp.set(0, 0, xp.get(0, 0) + eps);
        let mut xm = x.clone();
        xm.set(0, 0, xm.get(0, 0) - eps);
        let lp = 0.5 * d.clone().forward(&xp).norm_sq();
        let lm = 0.5 * d.clone().forward(&xm).norm_sq();
        let numeric_x = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic_x - numeric_x).abs() < 1e-2,
            "dX analytic {analytic_x} vs numeric {numeric_x}"
        );
    }

    mod init {
        use super::*;
        pub fn rand_x(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
            mrsch_linalg::init::gaussian_matrix(rng, rows, cols, 1.0)
        }
    }

    #[test]
    fn conv1d_known_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv1d::new(1, 1, 2, 1, 4, &mut rng);
        // Filter [1, -1], bias 0: discrete difference.
        c.w = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        c.b = Matrix::zeros(1, 1);
        let x = Matrix::from_vec(1, 4, vec![1.0, 3.0, 6.0, 10.0]);
        let y = c.forward(&x);
        assert_eq!(y.shape(), (1, 3));
        assert_eq!(y.as_slice(), &[-2.0, -3.0, -4.0]);
    }

    #[test]
    fn conv1d_stride_and_channels_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = Conv1d::new(2, 3, 4, 2, 10, &mut rng);
        assert_eq!(c.out_len(), 4);
        assert_eq!(c.out_width(), 12);
        assert_eq!(c.in_width(), 20);
    }

    #[test]
    fn conv1d_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Conv1d::new(2, 2, 3, 2, 7, &mut rng);
        let x = mrsch_linalg::init::gaussian_matrix(&mut rng, 2, c.in_width(), 1.0);
        let y = c.forward(&x);
        let gin = c.backward(&y); // loss 0.5||y||^2
        let eps = 1e-3f32;
        // Spot-check several weight coordinates and one input coordinate.
        for &(r, col) in &[(0usize, 0usize), (1, 2), (0, 5)] {
            let analytic = c.grad_w.get(r, col);
            let mut cp = c.clone();
            cp.w.set(r, col, cp.w.get(r, col) + eps);
            let mut cm = c.clone();
            cm.w.set(r, col, cm.w.get(r, col) - eps);
            let lp = 0.5 * cp.forward(&x).norm_sq();
            let lm = 0.5 * cm.forward(&x).norm_sq();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "conv dW[{r}][{col}] analytic {analytic} vs numeric {numeric}"
            );
        }
        let analytic_x = gin.get(0, 3);
        let mut xp = x.clone();
        xp.set(0, 3, xp.get(0, 3) + eps);
        let mut xm = x.clone();
        xm.set(0, 3, xm.get(0, 3) - eps);
        let lp = 0.5 * c.clone().forward(&xp).norm_sq();
        let lm = 0.5 * c.clone().forward(&xm).norm_sq();
        let numeric_x = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic_x - numeric_x).abs() < 2e-2,
            "conv dX analytic {analytic_x} vs numeric {numeric_x}"
        );
    }

    /// The GEMM-lowered backward is bit-identical to scalar loops written
    /// in the GEMM's documented per-element reduction: a `mul_add` chain
    /// in increasing contraction order starting from `+0.0` (the
    /// bit-exactness spec of `mrsch_linalg::gemm`, honored by both the
    /// direct and the packed path).
    #[test]
    fn conv1d_backward_gemm_matches_scalar_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut c = Conv1d::new(3, 4, 3, 2, 11, &mut rng);
        let batch = 5;
        let x = mrsch_linalg::init::gaussian_matrix(&mut rng, batch, c.in_width(), 1.0);
        let y = c.forward(&x);
        let gout = y; // loss 0.5·||y||², so dL/dy = y
        let gin = c.backward(&gout);

        let out_len = c.out_len();
        let (noc, fan_in) = (c.out_channels, c.in_channels * c.kernel);
        let rows = batch * out_len;
        let patches = c.im2col(&x);
        // Position-major gather of the channel-major output gradient.
        let mut ds = vec![0.0f32; rows * noc];
        for s in 0..batch {
            for t in 0..out_len {
                for oc in 0..noc {
                    ds[(s * out_len + t) * noc + oc] = gout.get(s, oc * out_len + t);
                }
            }
        }
        // dW = dScoresᵀ · patches: chains over rows, increasing.
        let mut gw = vec![0.0f32; noc * fan_in];
        for oc in 0..noc {
            for f in 0..fan_in {
                let mut acc = 0.0f32;
                for r in 0..rows {
                    acc = ds[r * noc + oc].mul_add(patches.get(r, f), acc);
                }
                gw[oc * fan_in + f] = acc;
            }
        }
        assert_eq!(c.grad_w.as_slice(), &gw[..], "dW must be bit-identical");
        // dB: plain column sums in increasing-row order.
        let mut gb = vec![0.0f32; noc];
        for r in 0..rows {
            for (acc, &v) in gb.iter_mut().zip(&ds[r * noc..(r + 1) * noc]) {
                *acc += v;
            }
        }
        assert_eq!(c.grad_b.as_slice(), &gb[..], "dB must be bit-identical");
        // dX: dPatches = dScores · W (chain over out-channels), col2im
        // scatter-added in the implementation's (t, ic, k) order.
        let mut gi = vec![0.0f32; batch * c.in_width()];
        for s in 0..batch {
            for t in 0..out_len {
                let start = t * c.stride;
                for ic in 0..c.in_channels {
                    for k in 0..c.kernel {
                        let f = ic * c.kernel + k;
                        let mut acc = 0.0f32;
                        for oc in 0..noc {
                            acc = ds[(s * out_len + t) * noc + oc].mul_add(c.w.get(oc, f), acc);
                        }
                        gi[s * c.in_width() + ic * c.length + start + k] += acc;
                    }
                }
            }
        }
        assert_eq!(gin.as_slice(), &gi[..], "dX must be bit-identical");
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = Layer::Dense(Dense::new(2, 2, &mut rng));
        let x = Matrix::filled(1, 2, 1.0);
        let y = layer.forward(&x);
        layer.backward(&y);
        layer.zero_grad();
        layer.visit_params(&mut |_, g| assert!(g.as_slice().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn param_count_accounts_weights_and_biases() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Layer::Dense(Dense::new(3, 4, &mut rng));
        assert_eq!(d.param_count(), 3 * 4 + 4);
        let c = Layer::Conv1d(Conv1d::new(1, 2, 3, 1, 8, &mut rng));
        assert_eq!(c.param_count(), 2 * 3 + 2);
    }
}
