//! Property-based tests of the network stack: gradient correctness by
//! finite differences on randomized architectures and inputs.

use mrsch_linalg::Matrix;
use mrsch_nn::layer::Activation;
use mrsch_nn::loss::{masked_mse, mse};
use mrsch_nn::net::Sequential;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_input(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Build a 2-layer net with a random hidden width and activation.
///
/// Finite-difference checks only use *smooth* activations: a rectifier
/// pre-activation that lands within eps of its kink makes central
/// differences disagree with the (correct) one-sided analytic gradient.
/// LeakyReLU's gradient is exercised by deterministic unit tests in
/// `layer.rs` at points safely away from the kink.
fn build_net(seed: u64, input: usize, hidden: usize, act_idx: usize, out: usize) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let act = [Activation::Tanh, Activation::Identity][act_idx % 2];
    Sequential::new()
        .dense(input, hidden, &mut rng)
        .activation(act)
        .dense(hidden, out, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn input_gradient_matches_finite_difference(
        seed in 0u64..1_000,
        hidden in 2usize..8,
        act_idx in 0usize..3,
        x in arb_input(2, 3),
    ) {
        let mut net = build_net(seed, 3, hidden, act_idx, 2);
        let y = net.forward(&x);
        net.zero_grad();
        let grad_in = net.backward(&y); // loss = 0.5 ||y||²
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = 0.5 * net.clone().forward(&xp).norm_sq();
            let lm = 0.5 * net.clone().forward(&xm).norm_sq();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.as_slice()[i];
            let scale = analytic.abs().max(numeric.abs()).max(1.0);
            prop_assert!(
                (analytic - numeric).abs() / scale < 0.05,
                "input grad [{i}] analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn mse_loss_is_nonnegative_and_zero_iff_equal(
        pred in arb_input(3, 4),
        target in arb_input(3, 4),
    ) {
        let (loss, grad) = mse(&pred, &target);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.all_finite());
        let (self_loss, self_grad) = mse(&pred, &pred);
        prop_assert_eq!(self_loss, 0.0);
        prop_assert!(self_grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn masked_mse_ignores_exactly_the_mask(
        pred in arb_input(2, 6),
        target in arb_input(2, 6),
        mask_bits in prop::collection::vec(prop::bool::ANY, 12),
    ) {
        let mask = Matrix::from_vec(
            2,
            6,
            mask_bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
        );
        let (loss, grad) = masked_mse(&pred, &target, &mask);
        prop_assert!(loss >= 0.0);
        for i in 0..12 {
            if mask.as_slice()[i] == 0.0 {
                prop_assert_eq!(grad.as_slice()[i], 0.0);
            }
        }
        // Perturbing a masked element never changes the loss.
        let masked_idx = (0..12).find(|&i| mask.as_slice()[i] == 0.0);
        if let Some(i) = masked_idx {
            let mut p2 = pred.clone();
            p2.as_mut_slice()[i] += 123.0;
            let (loss2, _) = masked_mse(&p2, &target, &mask);
            prop_assert_eq!(loss, loss2);
        }
    }

    #[test]
    fn grad_clip_caps_norm(
        seed in 0u64..1_000,
        x in arb_input(4, 3),
        max_norm in 0.1f32..2.0,
    ) {
        let mut net = build_net(seed, 3, 4, 0, 2);
        let y = net.forward(&x);
        net.zero_grad();
        net.backward(&y.scale(50.0));
        net.clip_grad_norm(max_norm);
        prop_assert!(net.grad_norm() <= max_norm * 1.001);
    }
}
