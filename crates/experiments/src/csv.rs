//! CSV emission helpers — re-exported from the shared emitter in
//! `mrsch_eval::table` so the experiment binaries and the evaluation
//! harness keep one set of quoting rules.

pub use mrsch_eval::table::{f, to_csv, write_csv_to, write_results};
