//! Fig. 10 — the three-resource case study (§V-E): CPU + burst buffer +
//! power on S6–S10, shown as five-axis Kiviat charts.
//!
//! The extra axis is `Avg_SysPower` — the utilization of the power
//! budget, which the site wants maximized (run as hot as the budget
//! allows, §V-E's third objective).

use crate::comparison::{run_suite, Comparison};
use crate::csv;
use crate::kiviat::{self, KiviatRow};
use crate::scale::ExpScale;
use mrsch_workload::suite::WorkloadSpec;

/// The axis labels of Fig. 10, in order.
pub const AXES: [&str; 5] = [
    "Node Utilization",
    "Burst Buffer Utilization",
    "Avg_SysPower",
    "1/Avg_Wait",
    "1/Avg_Slowdown",
];

/// Kiviat rows for one three-resource workload.
#[derive(Clone, Debug)]
pub struct Fig10Chart {
    /// Workload name ("S6" … "S10").
    pub workload: String,
    /// One row per method.
    pub rows: Vec<KiviatRow>,
}

/// Run the four methods on S6–S10 and normalize into Kiviat charts.
pub fn run(scale: &ExpScale, seed: u64) -> Vec<Fig10Chart> {
    let results = run_suite(&WorkloadSpec::three_resource_suite(), scale, seed);
    charts_from(&results)
}

/// Build the charts from raw comparison results (exposed for tests).
pub fn charts_from(results: &[Comparison]) -> Vec<Fig10Chart> {
    let mut workloads: Vec<String> = results.iter().map(|r| r.workload.clone()).collect();
    workloads.dedup();
    workloads
        .into_iter()
        .map(|wl| {
            let subset: Vec<&Comparison> =
                results.iter().filter(|r| r.workload == wl).collect();
            let methods: Vec<String> =
                subset.iter().map(|r| r.method.label().to_string()).collect();
            let raw: Vec<Vec<f64>> = subset
                .iter()
                .map(|r| {
                    vec![
                        r.report.resource_utilization[0],
                        r.report.resource_utilization[1],
                        r.report.resource_utilization[2],
                        r.report.avg_wait_hours(),
                        r.report.avg_slowdown,
                    ]
                })
                .collect();
            let rows =
                kiviat::normalize(&methods, &raw, &[true, true, true, false, false]);
            Fig10Chart { workload: wl, rows }
        })
        .collect()
}

/// Print every chart.
pub fn print(charts: &[Fig10Chart]) {
    println!("Fig. 10 — three-resource case study (normalized axes)");
    for chart in charts {
        println!("  {} — axes: {:?}", chart.workload, AXES);
        for row in &chart.rows {
            let vals: Vec<String> = row.axes.iter().map(|a| format!("{a:.3}")).collect();
            println!(
                "    {:<14} [{}] area={:.3}",
                row.method,
                vals.join(", "),
                kiviat::polygon_area(&row.axes)
            );
        }
    }
}

/// CSV rows for `results/fig10.csv`.
pub fn csv_rows(charts: &[Fig10Chart]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "workload",
        "method",
        "node_util_norm",
        "bb_util_norm",
        "power_util_norm",
        "inv_wait_norm",
        "inv_slowdown_norm",
        "area",
    ];
    let rows = charts
        .iter()
        .flat_map(|c| {
            c.rows.iter().map(move |r| {
                let mut row = vec![c.workload.clone(), r.method.clone()];
                row.extend(r.axes.iter().map(|a| csv::f(*a)));
                row.push(csv::f(kiviat::polygon_area(&r.axes)));
                row
            })
        })
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::run_workload;

    #[test]
    fn three_resource_workload_runs_all_methods() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 25;
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        let results = run_workload(&WorkloadSpec::s6(), &scale, 51);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.report.resource_utilization.len(), 3, "power axis present");
            assert_eq!(r.report.jobs_completed, 25);
        }
        let charts = charts_from(&results);
        assert_eq!(charts.len(), 1);
        assert_eq!(charts[0].rows[0].axes.len(), 5);
    }
}
