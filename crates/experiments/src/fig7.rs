//! Fig. 7 — Kiviat charts: overall scheduling performance per workload.
//!
//! Four axes: node utilization, burst-buffer utilization, `1/avg_wait`
//! and `1/avg_slowdown`, each normalized so the best method scores 1.

use crate::comparison::{Comparison, MethodName};
use crate::csv;
use crate::kiviat::{self, KiviatRow};

/// The axis labels of Fig. 7, in order.
pub const AXES: [&str; 4] = [
    "Node Utilization",
    "Burst Buffer Utilization",
    "1/Avg_Wait",
    "1/Avg_Slowdown",
];

/// Kiviat rows for one workload.
#[derive(Clone, Debug)]
pub struct Fig7Chart {
    /// Workload name.
    pub workload: String,
    /// One row per method.
    pub rows: Vec<KiviatRow>,
}

/// Build the per-workload Kiviat charts from comparison results.
pub fn run(results: &[Comparison]) -> Vec<Fig7Chart> {
    let mut workloads: Vec<String> = results.iter().map(|r| r.workload.clone()).collect();
    workloads.dedup();
    workloads
        .into_iter()
        .map(|wl| {
            let subset: Vec<&Comparison> =
                results.iter().filter(|r| r.workload == wl).collect();
            let methods: Vec<String> =
                subset.iter().map(|r| r.method.label().to_string()).collect();
            let raw: Vec<Vec<f64>> = subset
                .iter()
                .map(|r| {
                    vec![
                        r.report.resource_utilization[0],
                        r.report.resource_utilization[1],
                        r.report.avg_wait_hours(),
                        r.report.avg_slowdown,
                    ]
                })
                .collect();
            let rows = kiviat::normalize(&methods, &raw, &[true, true, false, false]);
            Fig7Chart { workload: wl, rows }
        })
        .collect()
}

/// Methods ranked by Kiviat polygon area for one chart (best first).
pub fn area_ranking(chart: &Fig7Chart) -> Vec<(String, f64)> {
    let mut ranked: Vec<(String, f64)> = chart
        .rows
        .iter()
        .map(|r| (r.method.clone(), kiviat::polygon_area(&r.axes)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// Print every chart with axis values and area ranking.
pub fn print(charts: &[Fig7Chart]) {
    println!("Fig. 7 — Kiviat charts (normalized; 1.0 = best method per axis)");
    for chart in charts {
        println!("  {} — axes: {:?}", chart.workload, AXES);
        for row in &chart.rows {
            let vals: Vec<String> = row.axes.iter().map(|a| format!("{a:.3}")).collect();
            println!("    {:<14} [{}]", row.method, vals.join(", "));
        }
        let ranking = area_ranking(chart);
        let names: Vec<&str> = ranking.iter().map(|(m, _)| m.as_str()).collect();
        println!("    area ranking: {}", names.join(" > "));
    }
}

/// CSV rows for `results/fig7.csv`.
pub fn csv_rows(charts: &[Fig7Chart]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "workload",
        "method",
        "node_util_norm",
        "bb_util_norm",
        "inv_wait_norm",
        "inv_slowdown_norm",
        "area",
    ];
    let rows = charts
        .iter()
        .flat_map(|c| {
            c.rows.iter().map(move |r| {
                let mut row = vec![c.workload.clone(), r.method.clone()];
                row.extend(r.axes.iter().map(|a| csv::f(*a)));
                row.push(csv::f(kiviat::polygon_area(&r.axes)));
                row
            })
        })
        .collect();
    (header, rows)
}

/// Does MRSch have the largest area on every chart? (The paper's summary
/// claim for Fig. 7.)
pub fn mrsch_wins_everywhere(charts: &[Fig7Chart]) -> bool {
    charts.iter().all(|c| {
        area_ranking(c)
            .first()
            .map(|(m, _)| m == MethodName::Mrsch.label())
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::job::JobRecord;
    use mrsim::metrics::{MetricsCollector, SimReport};

    fn fake(workload: &str, method: MethodName, util: f64, wait: u64) -> Comparison {
        let mc = MetricsCollector::new(2);
        let records = vec![JobRecord {
            id: 0,
            submit: 0,
            start: wait,
            end: wait + 1000,
            backfilled: false,
            outcome: mrsim::job::JobOutcome::Finished,
        }];
        let mut report = SimReport::assemble(
            vec!["nodes".into(), "burst_buffer_tb".into()],
            records,
            &mc,
            &[1, 1],
            wait + 1000,
            1,
            1,
            mrsim::EventCounts::new(),
            0,
            None,
        );
        report.resource_utilization = vec![util, util * 0.8];
        Comparison { method, workload: workload.into(), report }
    }

    #[test]
    fn charts_grouped_by_workload() {
        let results = vec![
            fake("S1", MethodName::Mrsch, 0.9, 100),
            fake("S1", MethodName::Heuristic, 0.5, 400),
            fake("S2", MethodName::Mrsch, 0.8, 150),
            fake("S2", MethodName::Heuristic, 0.6, 300),
        ];
        let charts = run(&results);
        assert_eq!(charts.len(), 2);
        assert_eq!(charts[0].rows.len(), 2);
        assert_eq!(charts[0].rows[0].axes.len(), 4);
    }

    #[test]
    fn dominant_method_ranks_first_and_wins() {
        let results = vec![
            fake("S1", MethodName::Mrsch, 0.9, 100),
            fake("S1", MethodName::Heuristic, 0.5, 400),
        ];
        let charts = run(&results);
        let ranking = area_ranking(&charts[0]);
        assert_eq!(ranking[0].0, "MRSch");
        assert!(mrsch_wins_everywhere(&charts));
    }

    #[test]
    fn losing_mrsch_detected() {
        let results = vec![
            fake("S1", MethodName::Mrsch, 0.4, 500),
            fake("S1", MethodName::Heuristic, 0.9, 100),
        ];
        assert!(!mrsch_wins_everywhere(&run(&results)));
    }
}
