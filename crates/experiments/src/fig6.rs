//! Fig. 6 — user-level metrics: average job wait time (hours) and average
//! job slowdown for the four methods on S1–S5.

use crate::comparison::Comparison;
use crate::csv;

/// Print the two panels of Fig. 6.
pub fn print(results: &[Comparison]) {
    println!("Fig. 6 — user-level metrics");
    println!(
        "{:<4} {:<14} {:>12} {:>12}",
        "wl", "method", "wait (h)", "slowdown"
    );
    for r in results {
        println!(
            "{:<4} {:<14} {:>12.3} {:>12.3}",
            r.workload,
            r.method.label(),
            r.report.avg_wait_hours(),
            r.report.avg_slowdown,
        );
    }
}

/// CSV rows for `results/fig6.csv`.
pub fn csv_rows(results: &[Comparison]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec!["workload", "method", "avg_wait_h", "avg_slowdown"];
    let rows = results
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.method.label().to_string(),
                csv::f(r.report.avg_wait_hours()),
                csv::f(r.report.avg_slowdown),
            ]
        })
        .collect();
    (header, rows)
}

/// Best improvement of MRSch over every other method, as
/// `(wait_reduction_pct, slowdown_reduction_pct)` maxima across the suite
/// — the paper headline is "up to 48 % / 41 %".
pub fn mrsch_improvements(results: &[Comparison]) -> (f64, f64) {
    use crate::comparison::MethodName;
    let mut best_wait = 0.0f64;
    let mut best_sd = 0.0f64;
    let workloads: Vec<&str> = {
        let mut w: Vec<&str> = results.iter().map(|r| r.workload.as_str()).collect();
        w.dedup();
        w
    };
    for wl in workloads {
        let of = |m: MethodName| {
            results
                .iter()
                .find(|r| r.workload == wl && r.method == m)
                .map(|r| (r.report.avg_wait_hours(), r.report.avg_slowdown))
        };
        if let Some((m_wait, m_sd)) = of(MethodName::Mrsch) {
            for other in [MethodName::Optimization, MethodName::ScalarRl, MethodName::Heuristic]
            {
                if let Some((o_wait, o_sd)) = of(other) {
                    if o_wait > 1e-9 {
                        best_wait = best_wait.max(100.0 * (o_wait - m_wait) / o_wait);
                    }
                    if o_sd > 1e-9 {
                        best_sd = best_sd.max(100.0 * (o_sd - m_sd) / o_sd);
                    }
                }
            }
        }
    }
    (best_wait, best_sd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::MethodName;
    use mrsim::job::JobRecord;
    use mrsim::metrics::{MetricsCollector, SimReport};

    fn fake(workload: &str, method: MethodName, wait_s: u64) -> Comparison {
        let mc = MetricsCollector::new(2);
        let records = vec![JobRecord {
            id: 0,
            submit: 0,
            start: wait_s,
            end: wait_s + 100,
            backfilled: false,
            outcome: mrsim::job::JobOutcome::Finished,
        }];
        let report = SimReport::assemble(
            vec!["nodes".into(), "burst_buffer_tb".into()],
            records,
            &mc,
            &[1, 1],
            wait_s + 100,
            1,
            1,
            mrsim::EventCounts::new(),
            0,
            None,
        );
        Comparison { method, workload: workload.into(), report }
    }

    #[test]
    fn improvements_measure_reduction() {
        let results = vec![
            fake("S1", MethodName::Mrsch, 3600),     // 1 h wait
            fake("S1", MethodName::Heuristic, 7200), // 2 h wait
        ];
        let (wait_pct, _) = mrsch_improvements(&results);
        assert!((wait_pct - 50.0).abs() < 1e-9, "50% reduction, got {wait_pct}");
    }

    #[test]
    fn csv_rows_shape() {
        let results = vec![fake("S2", MethodName::ScalarRl, 100)];
        let (header, rows) = csv_rows(&results);
        assert_eq!(rows[0].len(), header.len());
        assert_eq!(rows[0][1], "Scalar RL");
    }
}
