//! Disruption-curriculum comparison: does hardening on cancel/overrun/
//! drain-heavy training phases pay off when the evaluation trace is
//! itself disrupted?
//!
//! One [`EvalPlan`] evaluates three registry policies on the identical
//! disrupted held-out scenario (a mid-trace node drain plus user
//! cancellations and walltime overruns — the PR-2 `node_drain_recovery`
//! setting):
//!
//! * **fcfs** — the untrained heuristic baseline,
//! * **mrsch-clean** — MRSch trained on disruption-free episodes,
//! * **mrsch-hardened** — MRSch trained through
//!   [`Curriculum::disruption_hardening`] (clean → cancel/overrun-heavy
//!   → drain-heavy), same total episode budget and seed.
//!
//! The two MRSch entries are the *same* [`PolicySpec`] with different
//! per-policy training curricula — exactly the kind of variant
//! comparison the registry's tags exist for. No policy constructors
//! live here.

use crate::csv;
use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_eval::{EvalPlan, PolicySpec};
use mrsch_workload::split::paper_split;
use mrsim::SimTime;

/// One evaluated scheduler's metrics on the disrupted trace.
#[derive(Clone, Debug)]
pub struct CurriculumRow {
    /// "fcfs", "mrsch-clean" or "mrsch-hardened".
    pub method: String,
    /// The full evaluation report (disruption counters included).
    pub report: SimReport,
}

/// Episodes per curriculum phase at a given scale.
fn episodes_per_phase(scale: &ExpScale) -> usize {
    (scale.sets_per_phase * scale.train_rounds).max(2)
}

/// The disrupted evaluation setting: 25 % node drain a third of the way
/// in (one simulated hour), 15 % cancels, 10 % overruns.
fn eval_disruption(horizon: SimTime) -> DisruptionConfig {
    DisruptionConfig {
        cancel_fraction: 0.15,
        overrun_fraction: 0.10,
        overrun_factor: 1.5,
        drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: horizon / 3, duration: 3600 }],
    }
}

/// Run the comparison with `workers` rollout threads.
pub fn run(scale: &ExpScale, seed: u64, workers: usize) -> Vec<CurriculumRow> {
    let system = scale.base_system();
    let spec = WorkloadSpec::s2();
    let trace = scale.base_trace(seed);
    let split = paper_split(&trace);
    let train_slice = &split.train[..(scale.jobs_per_set * 2).min(split.train.len())];
    let test_slice = &split.test[..scale.eval_jobs.min(split.test.len())];
    let horizon = test_slice.iter().map(|t| t.submit).max().unwrap_or(0);
    let eval_params = SimParams {
        enforce_walltime: true,
        ..SimParams::new(scale.window, true)
    };

    // The held-out evaluation scenario: test split + the disruption set.
    let eval_scenario = Scenario::new(
        "disrupted-test",
        JobSource::Trace(test_slice.to_vec()),
        spec.clone(),
        eval_params,
    )
    .with_disruption("disrupted-test", eval_disruption(horizon))
    .with_seed(seed ^ 0xd15);

    // Both agents train from the same seed and episode budget; only the
    // curricula differ.
    let clean_scenario = Scenario::new(
        "clean",
        JobSource::Trace(train_slice.to_vec()),
        spec.clone(),
        SimParams::new(scale.window, true),
    )
    .with_seed(seed ^ 0x5c);
    let per_phase = episodes_per_phase(scale);
    let clean_curriculum =
        Curriculum::new().phase(CurriculumPhase::new(clean_scenario.clone(), 3 * per_phase));
    let hardened_curriculum = Curriculum::disruption_hardening(
        clean_scenario,
        DisruptionConfig {
            cancel_fraction: 0.25,
            overrun_fraction: 0.15,
            overrun_factor: 1.5,
            drains: Vec::new(),
        },
        eval_disruption(horizon),
        per_phase,
    );

    let grid = EvalPlan::new(
        system,
        vec![
            PolicySpec::Fcfs,
            PolicySpec::mrsch_tagged("mrsch-clean"),
            PolicySpec::mrsch_tagged("mrsch-hardened"),
        ],
        vec![eval_scenario],
        vec![seed],
    )
    .trainer(
        TrainerConfig::default()
            .workers(workers)
            .batches_per_episode(scale.batches_per_episode),
    )
    .policy_training(1, clean_curriculum)
    .policy_training(2, hardened_curriculum)
    .run();

    // One scenario, one seed: cells are already in policy order.
    grid.cells
        .into_iter()
        .map(|c| CurriculumRow { method: c.policy, report: c.report })
        .collect()
}

/// Print the comparison table.
pub fn print(rows: &[CurriculumRow]) {
    println!("Disruption-curriculum comparison (disrupted held-out trace)");
    println!(
        "  {:<16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "method", "node_util", "bb_util", "wait_h", "slowdown", "makespan", "cancelled", "killed"
    );
    for r in rows {
        println!(
            "  {:<16} {:>9.4} {:>9.4} {:>9.3} {:>10.3} {:>10} {:>9} {:>9}",
            r.method,
            r.report.resource_utilization[0],
            r.report.resource_utilization[1],
            r.report.avg_wait_hours(),
            r.report.avg_slowdown,
            r.report.makespan,
            r.report.jobs_cancelled,
            r.report.jobs_killed,
        );
    }
}

/// CSV rows for `results/disruption_curriculum.csv`.
pub fn csv_rows(rows: &[CurriculumRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "method", "node_util", "bb_util", "avg_wait_h", "avg_slowdown", "makespan",
        "cancelled", "killed", "unfinished", "capacity_lost_node_s",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                csv::f(r.report.resource_utilization[0]),
                csv::f(r.report.resource_utilization[1]),
                csv::f(r.report.avg_wait_hours()),
                csv::f(r.report.avg_slowdown),
                r.report.makespan.to_string(),
                r.report.jobs_cancelled.to_string(),
                r.report.jobs_killed.to_string(),
                r.report.jobs_unfinished.to_string(),
                csv::f(r.report.capacity_lost_unit_seconds[0]),
            ]
        })
        .collect();
    (header, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "experiment-scale (trains two agents); run with --ignored / in CI"]
    fn three_rows_with_disruption_accounting() {
        let mut scale = ExpScale::quick();
        scale.jobs_per_set = 20;
        scale.eval_jobs = 30;
        scale.batches_per_episode = 2;
        let rows = run(&scale, 33, 2);
        assert_eq!(rows.len(), 3);
        let methods: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(methods, ["fcfs", "mrsch-clean", "mrsch-hardened"]);
        for r in &rows {
            assert!(
                r.report.all_jobs_accounted(r.report.records.len()),
                "{}: every job must be accounted",
                r.method
            );
            assert!(r.report.capacity_lost_unit_seconds[0] > 0.0, "{}: drain fired", r.method);
            assert!(r.report.jobs_cancelled > 0, "{}: cancels fired", r.method);
        }
    }

    #[test]
    #[ignore = "experiment-scale; run with --ignored / in CI"]
    fn worker_count_does_not_change_rows() {
        let mut scale = ExpScale::quick();
        scale.jobs_per_set = 15;
        scale.eval_jobs = 20;
        scale.batches_per_episode = 2;
        let a = run(&scale, 7, 1);
        let b = run(&scale, 7, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report, y.report, "{} differs across worker counts", x.method);
        }
    }
}
