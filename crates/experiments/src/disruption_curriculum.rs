//! Disruption-curriculum comparison: does hardening on cancel/overrun/
//! drain-heavy training phases pay off when the evaluation trace is
//! itself disrupted?
//!
//! Two MRSch agents are trained from the same seed through the engine
//! (same total episode budget, same rollout-worker machinery):
//!
//! * **clean** — every episode disruption-free,
//! * **hardened** — the [`Curriculum::disruption_hardening`] phases:
//!   clean → cancel/overrun-heavy → drain-heavy.
//!
//! Both are then evaluated greedily on the identical held-out trace
//! under a mid-trace node drain plus user cancellations and walltime
//! overruns (the PR-2 `node_drain_recovery` setting), alongside the
//! FCFS baseline. Rows report user- and system-level metrics with full
//! disruption accounting.

use crate::csv;
use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_baselines::FcfsPolicy;
use mrsch_workload::split::paper_split;

/// One evaluated scheduler's metrics on the disrupted trace.
#[derive(Clone, Debug)]
pub struct CurriculumRow {
    /// "fcfs", "mrsch-clean" or "mrsch-hardened".
    pub method: String,
    /// The full evaluation report (disruption counters included).
    pub report: SimReport,
}

/// Episodes per curriculum phase at a given scale.
fn episodes_per_phase(scale: &ExpScale) -> usize {
    (scale.sets_per_phase * scale.train_rounds).max(2)
}

/// The disrupted evaluation setting: 25 % node drain a third of the way
/// in (one simulated hour), 15 % cancels, 10 % overruns.
fn eval_disruption(eval_jobs: &[Job]) -> DisruptionConfig {
    let last_submit = eval_jobs.iter().map(|j| j.submit).max().unwrap_or(0);
    DisruptionConfig {
        cancel_fraction: 0.15,
        overrun_fraction: 0.10,
        overrun_factor: 1.5,
        drains: vec![DrainSpec {
            resource: 0,
            fraction: 0.25,
            at: last_submit / 3,
            duration: 3600,
        }],
    }
}

/// Run the comparison with `workers` rollout threads.
pub fn run(scale: &ExpScale, seed: u64, workers: usize) -> Vec<CurriculumRow> {
    let system = scale.base_system();
    let spec = WorkloadSpec::s2();
    let trace = scale.base_trace(seed);
    let split = paper_split(&trace);
    let train_slice = &split.train[..(scale.jobs_per_set * 2).min(split.train.len())];
    let eval_jobs = spec.build(
        &split.test[..scale.eval_jobs.min(split.test.len())],
        &system,
        seed ^ 0xeea1,
    );
    let disrupted = eval_disruption(&eval_jobs).synthesize(&eval_jobs, &system, seed ^ 0xd15);
    let eval_params = SimParams {
        enforce_walltime: true,
        ..SimParams::new(scale.window, true)
    };

    let clean_scenario = Scenario::new(
        "clean",
        JobSource::Trace(train_slice.to_vec()),
        spec.clone(),
        SimParams::new(scale.window, true),
    )
    .with_seed(seed ^ 0x5c);
    let per_phase = episodes_per_phase(scale);
    // Same episode budget for both agents: 3 phases × per_phase each.
    let clean_curriculum = Curriculum::new()
        .phase(CurriculumPhase::new(clean_scenario.clone(), 3 * per_phase));
    let hardened_curriculum = Curriculum::disruption_hardening(
        clean_scenario,
        DisruptionConfig {
            cancel_fraction: 0.25,
            overrun_fraction: 0.15,
            overrun_factor: 1.5,
            drains: Vec::new(),
        },
        eval_disruption(&eval_jobs),
        per_phase,
    );

    let trainer = TrainerConfig::default()
        .workers(workers)
        .batches_per_episode(scale.batches_per_episode);
    let train_and_eval = |name: &str, curriculum: &Curriculum| -> CurriculumRow {
        let mut agent = MrschBuilder::new(system.clone(), eval_params)
            .seed(seed)
            .trainer(trainer.clone())
            .build();
        agent.train_with_curriculum(curriculum);
        let report = agent
            .evaluate_disrupted(&disrupted.jobs, &disrupted.events)
            .expect("evaluation disruptions reference this job set");
        CurriculumRow { method: name.to_string(), report }
    };

    let mut rows = Vec::new();
    let mut fcfs_sim = Simulator::new(system.clone(), disrupted.jobs.clone(), eval_params)
        .expect("eval jobs fit the system");
    fcfs_sim.inject_all(&disrupted.events).expect("valid disruption trace");
    rows.push(CurriculumRow {
        method: "fcfs".into(),
        report: fcfs_sim.run(&mut FcfsPolicy::default()),
    });
    rows.push(train_and_eval("mrsch-clean", &clean_curriculum));
    rows.push(train_and_eval("mrsch-hardened", &hardened_curriculum));
    rows
}

/// Print the comparison table.
pub fn print(rows: &[CurriculumRow]) {
    println!("Disruption-curriculum comparison (disrupted held-out trace)");
    println!(
        "  {:<16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "method", "node_util", "bb_util", "wait_h", "slowdown", "makespan", "cancelled", "killed"
    );
    for r in rows {
        println!(
            "  {:<16} {:>9.4} {:>9.4} {:>9.3} {:>10.3} {:>10} {:>9} {:>9}",
            r.method,
            r.report.resource_utilization[0],
            r.report.resource_utilization[1],
            r.report.avg_wait_hours(),
            r.report.avg_slowdown,
            r.report.makespan,
            r.report.jobs_cancelled,
            r.report.jobs_killed,
        );
    }
}

/// CSV rows for `results/disruption_curriculum.csv`.
pub fn csv_rows(rows: &[CurriculumRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "method", "node_util", "bb_util", "avg_wait_h", "avg_slowdown", "makespan",
        "cancelled", "killed", "unfinished", "capacity_lost_node_s",
    ];
    let body = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                csv::f(r.report.resource_utilization[0]),
                csv::f(r.report.resource_utilization[1]),
                csv::f(r.report.avg_wait_hours()),
                csv::f(r.report.avg_slowdown),
                r.report.makespan.to_string(),
                r.report.jobs_cancelled.to_string(),
                r.report.jobs_killed.to_string(),
                r.report.jobs_unfinished.to_string(),
                csv::f(r.report.capacity_lost_unit_seconds[0]),
            ]
        })
        .collect();
    (header, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "experiment-scale (trains two agents); run with --ignored / in CI"]
    fn three_rows_with_disruption_accounting() {
        let mut scale = ExpScale::quick();
        scale.jobs_per_set = 20;
        scale.eval_jobs = 30;
        scale.batches_per_episode = 2;
        let rows = run(&scale, 33, 2);
        assert_eq!(rows.len(), 3);
        let methods: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(methods, ["fcfs", "mrsch-clean", "mrsch-hardened"]);
        for r in &rows {
            assert!(
                r.report.all_jobs_accounted(r.report.records.len()),
                "{}: every job must be accounted",
                r.method
            );
            assert!(r.report.capacity_lost_unit_seconds[0] > 0.0, "{}: drain fired", r.method);
            assert!(r.report.jobs_cancelled > 0, "{}: cancels fired", r.method);
        }
    }

    #[test]
    #[ignore = "experiment-scale; run with --ignored / in CI"]
    fn worker_count_does_not_change_rows() {
        let mut scale = ExpScale::quick();
        scale.jobs_per_set = 15;
        scale.eval_jobs = 20;
        scale.batches_per_episode = 2;
        let a = run(&scale, 7, 1);
        let b = run(&scale, 7, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report, y.report, "{} differs across worker counts", x.method);
        }
    }
}
