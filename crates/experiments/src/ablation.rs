//! Ablations of MRSch's design choices (beyond the paper's own MLP-vs-CNN
//! study):
//!
//! * **Dynamic vs fixed goal** (§III-B) — the paper's central claim is
//!   that dynamic resource prioritizing beats a static 50/50 weighting;
//!   here the *same* DFP agent runs with `GoalMode::Dynamic` and
//!   `GoalMode::Fixed`, isolating the goal mechanism from everything else.
//! * **Starvation guards on/off** (§III-C) — disabling reservation +
//!   EASY backfilling reproduces the "directly applying DFP … results in
//!   severe job starvation" observation via the max-wait metric.
//! * **Window size** (§III-A "Action") — sweeps `W` to expose the
//!   trade-off between action-space size and scheduling flexibility.

use crate::comparison::train_mrsch;
use crate::csv;
use crate::scale::ExpScale;
use mrsch::agent::{Mode, MrschPolicy};
use mrsch::prelude::*;
use mrsch_workload::split::paper_split;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Node utilization.
    pub node_util: f64,
    /// Burst-buffer utilization.
    pub bb_util: f64,
    /// Average wait (hours).
    pub avg_wait_h: f64,
    /// Maximum wait (hours) — the starvation indicator.
    pub max_wait_h: f64,
    /// Average slowdown.
    pub avg_slowdown: f64,
}

fn row(config: String, r: &SimReport) -> AblationRow {
    AblationRow {
        config,
        node_util: r.resource_utilization[0],
        bb_util: r.resource_utilization[1],
        avg_wait_h: r.avg_wait_hours(),
        max_wait_h: r.max_wait as f64 / 3600.0,
        avg_slowdown: r.avg_slowdown,
    }
}

fn eval_jobs(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> (SystemConfig, Vec<Job>) {
    let system = spec.system_for(&scale.base_system());
    let trace = scale.base_trace(seed);
    let split = paper_split(&trace);
    let mut test = split.test;
    test.truncate(scale.eval_jobs);
    let jobs = spec.build(&test, &system, seed ^ 0xEA1);
    (system, jobs)
}

/// Ablation 1: dynamic (Eq. 1) vs fixed uniform goal, same trained agent.
pub fn goal_mode(scale: &ExpScale, seed: u64) -> Vec<AblationRow> {
    let spec = WorkloadSpec::s5(); // most unbalanced contention
    let (system, jobs) = eval_jobs(&spec, scale, seed);
    let mut agent = train_mrsch(&spec, scale, seed, StateModuleKind::Mlp);
    let mut rows = Vec::new();
    for (label, mode) in [
        ("dynamic_goal(eq1)", GoalMode::Dynamic),
        ("fixed_goal(0.5/0.5)", GoalMode::uniform(2)),
    ] {
        let encoder = StateEncoder::with_hour_scale(system.clone(), scale.window);
        let mut policy =
            MrschPolicy::new(agent.agent_mut(), encoder, mode, Mode::Evaluate);
        let report = Simulator::new(system.clone(), jobs.clone(), scale.sim_params())
            .expect("valid jobs")
            .run(&mut policy);
        rows.push(row(label.to_string(), &report));
    }
    rows
}

/// Ablation 2: starvation guards (reservation + EASY backfilling) on/off.
pub fn starvation_guards(scale: &ExpScale, seed: u64) -> Vec<AblationRow> {
    let spec = WorkloadSpec::s4();
    let (system, jobs) = eval_jobs(&spec, scale, seed);
    let mut agent = train_mrsch(&spec, scale, seed, StateModuleKind::Mlp);
    let mut rows = Vec::new();
    for (label, backfill) in [("guards_on", true), ("guards_off", false)] {
        let encoder = StateEncoder::with_hour_scale(system.clone(), scale.window);
        let mut policy = MrschPolicy::new(
            agent.agent_mut(),
            encoder,
            GoalMode::Dynamic,
            Mode::Evaluate,
        );
        let params = SimParams::new(scale.window, backfill);
        let report = Simulator::new(system.clone(), jobs.clone(), params)
            .expect("valid jobs")
            .run(&mut policy);
        rows.push(row(label.to_string(), &report));
    }
    rows
}

/// Ablation 3: window-size sweep under FCFS-identical training budgets.
pub fn window_size(scale: &ExpScale, seed: u64, windows: &[usize]) -> Vec<AblationRow> {
    let spec = WorkloadSpec::s4();
    let mut rows = Vec::new();
    for &w in windows {
        let mut s = *scale;
        s.window = w;
        let (_, jobs) = eval_jobs(&spec, &s, seed);
        let mut agent = train_mrsch(&spec, &s, seed, StateModuleKind::Mlp);
        let report = agent.evaluate(&jobs);
        rows.push(row(format!("window_{w}"), &report));
    }
    rows
}

/// Print ablation rows.
pub fn print(title: &str, rows: &[AblationRow]) {
    println!("Ablation — {title}");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "config", "node util", "bb util", "wait(h)", "max wait", "slowdown"
    );
    for r in rows {
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            r.config, r.node_util, r.bb_util, r.avg_wait_h, r.max_wait_h, r.avg_slowdown
        );
    }
}

/// CSV rows.
pub fn csv_rows(rows: &[AblationRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header =
        vec!["config", "node_util", "bb_util", "avg_wait_h", "max_wait_h", "avg_slowdown"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                csv::f(r.node_util),
                csv::f(r.bb_util),
                csv::f(r.avg_wait_h),
                csv::f(r.max_wait_h),
                csv::f(r.avg_slowdown),
            ]
        })
        .collect();
    (header, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExpScale {
        let mut s = ExpScale::quick();
        s.eval_jobs = 25;
        s.jobs_per_set = 15;
        s.batches_per_episode = 2;
        s
    }

    #[test]
    fn goal_mode_ablation_produces_both_rows() {
        let rows = goal_mode(&tiny_scale(), 61);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].config.contains("dynamic"));
        assert!(rows[1].config.contains("fixed"));
        for r in &rows {
            assert!(r.node_util > 0.0);
        }
    }

    #[test]
    fn starvation_guard_rows_complete() {
        let rows = starvation_guards(&tiny_scale(), 62);
        assert_eq!(rows.len(), 2);
        // Both runs must finish all jobs (the guard affects waits, not
        // completion, on finite traces).
        for r in &rows {
            assert!(r.max_wait_h >= 0.0);
        }
    }

    #[test]
    fn window_sweep_covers_requested_sizes() {
        let rows = window_size(&tiny_scale(), 63, &[1, 4]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].config, "window_1");
        assert_eq!(rows[1].config, "window_4");
    }
}
