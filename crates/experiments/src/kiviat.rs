//! Kiviat-chart normalization (Figs. 7 and 10).
//!
//! The paper normalizes each metric to `[0, 1]` across methods, where 1
//! is the best method for that metric. Utilizations (and average system
//! power) are higher-better and divide by the per-metric maximum; wait
//! and slowdown are plotted as reciprocals (`1/x`) and then normalized
//! the same way.

/// One method's normalized axes for a single workload.
#[derive(Clone, Debug, PartialEq)]
pub struct KiviatRow {
    /// Method name.
    pub method: String,
    /// Normalized axis values in `[0, 1]`, aligned with the axis list.
    pub axes: Vec<f64>,
}

/// Normalize raw metric values into Kiviat axes.
///
/// `raw[i][k]` is the raw value of metric `k` for method `i`;
/// `higher_better[k]` says whether metric `k` is maximized (utilization)
/// or minimized (wait, slowdown — these are inverted first).
pub fn normalize(
    methods: &[String],
    raw: &[Vec<f64>],
    higher_better: &[bool],
) -> Vec<KiviatRow> {
    assert_eq!(methods.len(), raw.len());
    let nmetrics = higher_better.len();
    for row in raw {
        assert_eq!(row.len(), nmetrics, "ragged raw metric matrix");
    }
    // Convert lower-better metrics to reciprocals.
    let oriented: Vec<Vec<f64>> = raw
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(k, &v)| {
                    if higher_better[k] {
                        v
                    } else {
                        1.0 / v.max(1e-9)
                    }
                })
                .collect()
        })
        .collect();
    // Per-metric max over methods = 1.0.
    let maxima: Vec<f64> = (0..nmetrics)
        .map(|k| {
            oriented
                .iter()
                .map(|row| row[k])
                .fold(f64::NEG_INFINITY, f64::max)
                .max(1e-12)
        })
        .collect();
    methods
        .iter()
        .zip(&oriented)
        .map(|(m, row)| KiviatRow {
            method: m.clone(),
            axes: row.iter().zip(&maxima).map(|(v, mx)| v / mx).collect(),
        })
        .collect()
}

/// Polygon area of a Kiviat row (axes at equal angles) — the paper's
/// "larger area = better overall performance" summary.
pub fn polygon_area(axes: &[f64]) -> f64 {
    let n = axes.len();
    if n < 3 {
        return 0.0;
    }
    let angle = std::f64::consts::TAU / n as f64;
    0.5 * (0..n)
        .map(|i| axes[i] * axes[(i + 1) % n] * angle.sin())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_method_gets_one_per_axis() {
        let methods = vec!["a".to_string(), "b".to_string()];
        // metric0 higher-better, metric1 lower-better.
        let raw = vec![vec![0.8, 2.0], vec![0.4, 1.0]];
        let rows = normalize(&methods, &raw, &[true, false]);
        assert!((rows[0].axes[0] - 1.0).abs() < 1e-12, "a best on util");
        assert!((rows[1].axes[1] - 1.0).abs() < 1e-12, "b best on wait");
        assert!((rows[1].axes[0] - 0.5).abs() < 1e-12);
        assert!((rows[0].axes[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_axes_in_unit_interval() {
        let methods: Vec<String> = (0..4).map(|i| format!("m{i}")).collect();
        let raw = vec![
            vec![0.9, 0.8, 4.0, 8.0],
            vec![0.5, 0.9, 2.0, 3.0],
            vec![0.7, 0.1, 9.0, 2.0],
            vec![0.2, 0.3, 1.0, 9.0],
        ];
        let rows = normalize(&methods, &raw, &[true, true, false, false]);
        for r in rows {
            for a in r.axes {
                assert!((0.0..=1.0 + 1e-12).contains(&a), "axis {a}");
            }
        }
    }

    #[test]
    fn dominant_method_has_larger_area() {
        let methods = vec!["good".to_string(), "bad".to_string()];
        let raw = vec![vec![0.9, 0.9, 1.0, 1.0], vec![0.3, 0.3, 5.0, 5.0]];
        let rows = normalize(&methods, &raw, &[true, true, false, false]);
        assert!(polygon_area(&rows[0].axes) > polygon_area(&rows[1].axes));
    }

    #[test]
    fn zero_wait_is_safe() {
        let methods = vec!["a".to_string()];
        let rows = normalize(&methods, &[vec![0.5, 0.0]], &[true, false]);
        assert!(rows[0].axes[1].is_finite());
    }

    #[test]
    fn area_degenerate_cases() {
        assert_eq!(polygon_area(&[1.0, 1.0]), 0.0);
        assert!(polygon_area(&[1.0, 1.0, 1.0, 1.0]) > 0.0);
    }
}
