//! The four-method comparison engine behind Figs. 5, 6, 7 and 10.
//!
//! For every workload of a suite this runs, under identical simulator
//! mechanics (same window, same reservation + EASY backfilling):
//!
//! * **MRSch** — trained with the recommended curriculum, then evaluated
//!   greedily with the dynamic goal vector,
//! * **Optimization** — the NSGA-II window scheduler (no training),
//! * **Scalar RL** — the policy-gradient baseline trained on the same
//!   curriculum with the fixed-weight scalar reward,
//! * **Heuristic** — multi-resource FCFS.
//!
//! Workloads are evaluated on the chronological *test* split, never on
//! training data (§IV-A). The five workloads run on scoped threads —
//! they are fully independent — and results are returned in suite order.

use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_baselines::scalar_rl::{RlMode, ScalarRlAgent, ScalarRlConfig, ScalarRlPolicy};
use mrsch_baselines::{FcfsPolicy, GaPolicy};
use mrsch_workload::jobset::{curriculum, CurriculumOrder, JobSetKind};
use mrsch_workload::split::paper_split;
use mrsch_workload::theta::TraceJob;
use serde::{Deserialize, Serialize};

/// The four compared methods, in the paper's legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodName {
    /// The DFP-based agent (this paper).
    Mrsch,
    /// Multi-objective genetic-algorithm optimization.
    Optimization,
    /// Fixed-weight scalar-reward policy gradient.
    ScalarRl,
    /// Multi-resource FCFS.
    Heuristic,
}

impl MethodName {
    /// All four, in legend order.
    pub fn all() -> [MethodName; 4] {
        [MethodName::Mrsch, MethodName::Optimization, MethodName::ScalarRl, MethodName::Heuristic]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MethodName::Mrsch => "MRSch",
            MethodName::Optimization => "Optimization",
            MethodName::ScalarRl => "Scalar RL",
            MethodName::Heuristic => "Heuristic",
        }
    }
}

/// One method × workload result.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Which scheduler produced this report.
    pub method: MethodName,
    /// Workload name ("S1" … "S10").
    pub workload: String,
    /// The full simulator report.
    pub report: SimReport,
}

/// Evaluation jobs for a spec: the chronological test split, truncated to
/// the scale's evaluation size and materialized through the spec.
fn eval_jobs(
    spec: &WorkloadSpec,
    trace: &[TraceJob],
    system: &SystemConfig,
    scale: &ExpScale,
    seed: u64,
) -> Vec<Job> {
    let split = paper_split(trace);
    let mut test = split.test;
    test.truncate(scale.eval_jobs);
    spec.build(&test, system, seed)
}

/// Training curriculum (recommended order) from the train split.
fn train_sets(
    trace: &[TraceJob],
    scale: &ExpScale,
    seed: u64,
) -> Vec<(JobSetKind, Vec<TraceJob>)> {
    let split = paper_split(trace);
    curriculum(
        CurriculumOrder::recommended(),
        &split.train,
        &scale.trace_config(),
        scale.sets_per_phase,
        scale.jobs_per_set,
        seed,
    )
}

/// Train an MRSch agent for a workload spec at the given scale.
///
/// Exposed because Figs. 8 and 9 reuse the trained agent to log goal
/// vectors.
pub fn train_mrsch(
    spec: &WorkloadSpec,
    scale: &ExpScale,
    seed: u64,
    state_module: StateModuleKind,
) -> Mrsch {
    let system = spec.system_for(&scale.base_system());
    let trace = scale.base_trace(seed);
    let sets = train_sets(&trace, scale, seed ^ 0x5EED);
    // The paper decays ε by 0.995 per episode over 40 job sets; at this
    // reproduction's scale the curriculum spans an order of magnitude
    // fewer episodes, so the decay is proportionally faster — otherwise
    // the agent would still be acting almost uniformly at random when
    // training ends.
    let episodes = (sets.len() * scale.train_rounds).max(1) as f32;
    let mut cfg = mrsch_dfp::DfpConfig::scaled(1, system.num_resources(), scale.window);
    cfg.epsilon_min = 0.05;
    cfg.epsilon_decay = (cfg.epsilon_min as f64).powf(1.0 / episodes as f64) as f32;
    // Shorter prediction horizons than DFP's gaming defaults: scheduling
    // instances are minutes apart, so a 32-decision horizon spans hours
    // and its measurement changes are dominated by arrival noise. The
    // nearer offsets carry the learnable signal at this trace scale.
    cfg.offsets = vec![1, 2, 4, 8];
    cfg.offset_weights = vec![0.25, 0.25, 0.5, 1.0];
    let mut mrsch = MrschBuilder::new(system, scale.sim_params())
        .seed(seed)
        .state_module(state_module)
        .batches_per_episode(scale.batches_per_episode)
        .dfp_config(cfg)
        .build();
    for round in 0..scale.train_rounds {
        mrsch.train_curriculum(&sets, spec, seed.wrapping_add(round as u64 * 101));
    }
    mrsch
}

/// Train the scalar-RL baseline for a workload spec.
pub fn train_scalar_rl(
    spec: &WorkloadSpec,
    scale: &ExpScale,
    seed: u64,
) -> (ScalarRlAgent, StateEncoder, SystemConfig) {
    let system = spec.system_for(&scale.base_system());
    let encoder = StateEncoder::with_hour_scale(system.clone(), scale.window);
    let cfg = ScalarRlConfig::scaled(
        encoder.state_dim(),
        scale.window,
        system.num_resources(),
    );
    let mut agent = ScalarRlAgent::new(cfg, seed);
    let trace = scale.base_trace(seed);
    let sets = train_sets(&trace, scale, seed ^ 0x5EED);
    for round in 0..scale.train_rounds {
        for (i, (_, set)) in sets.iter().enumerate() {
            let jobs = spec.build(
                set,
                &system,
                seed.wrapping_add(round as u64 * 101 + i as u64),
            );
            let mut policy = ScalarRlPolicy::new(&mut agent, encoder.clone(), RlMode::Train);
            Simulator::new(system.clone(), jobs, scale.sim_params())
                .expect("valid jobs")
                .run(&mut policy);
        }
    }
    (agent, encoder, system)
}

/// Run all four methods on one workload spec.
pub fn run_workload(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> Vec<Comparison> {
    let system = spec.system_for(&scale.base_system());
    let trace = scale.base_trace(seed);
    let jobs = eval_jobs(spec, &trace, &system, scale, seed ^ 0xEA1);
    let mut out = Vec::with_capacity(4);

    // MRSch.
    let mut mrsch = train_mrsch(spec, scale, seed, StateModuleKind::Mlp);
    out.push(Comparison {
        method: MethodName::Mrsch,
        workload: spec.name.clone(),
        report: mrsch.evaluate(&jobs),
    });

    // Optimization (GA).
    let mut ga = GaPolicy::with_seed(seed);
    let report = Simulator::new(system.clone(), jobs.clone(), scale.sim_params())
        .expect("valid jobs")
        .run(&mut ga);
    out.push(Comparison {
        method: MethodName::Optimization,
        workload: spec.name.clone(),
        report,
    });

    // Scalar RL.
    let (mut agent, encoder, system_rl) = train_scalar_rl(spec, scale, seed);
    let mut policy = ScalarRlPolicy::new(&mut agent, encoder, RlMode::Evaluate);
    let report = Simulator::new(system_rl, jobs.clone(), scale.sim_params())
        .expect("valid jobs")
        .run(&mut policy);
    out.push(Comparison {
        method: MethodName::ScalarRl,
        workload: spec.name.clone(),
        report,
    });

    // Heuristic (FCFS).
    let report = Simulator::new(system, jobs, scale.sim_params())
        .expect("valid jobs")
        .run(&mut FcfsPolicy::default());
    out.push(Comparison {
        method: MethodName::Heuristic,
        workload: spec.name.clone(),
        report,
    });

    out
}

/// Run a whole suite (S1–S5 or S6–S10), one scoped thread per
/// workload, returning results in `(workload, method)` order.
pub fn run_suite(specs: &[WorkloadSpec], scale: &ExpScale, seed: u64) -> Vec<Comparison> {
    let mut slots: Vec<Option<Vec<Comparison>>> = vec![None; specs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            handles.push((i, scope.spawn(move || run_workload(spec, scale, seed))));
        }
        for (i, h) in handles {
            slots[i] = Some(h.join().expect("workload thread panicked"));
        }
    });
    slots.into_iter().flatten().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_and_order() {
        let all = MethodName::all();
        assert_eq!(all[0].label(), "MRSch");
        assert_eq!(all[3].label(), "Heuristic");
    }

    #[test]
    fn run_workload_produces_all_methods() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 30;
        scale.jobs_per_set = 20;
        scale.batches_per_episode = 2;
        let results = run_workload(&WorkloadSpec::s1(), &scale, 42);
        assert_eq!(results.len(), 4);
        for (r, m) in results.iter().zip(MethodName::all()) {
            assert_eq!(r.method, m);
            assert_eq!(r.workload, "S1");
            assert_eq!(r.report.jobs_completed, 30, "{:?} must finish all jobs", m);
        }
    }

    #[test]
    fn all_methods_see_identical_workload() {
        // Same eval job list: all methods complete the same job count and
        // their reports span the same submit horizon.
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 25;
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        let results = run_workload(&WorkloadSpec::s3(), &scale, 7);
        let completed: Vec<usize> = results.iter().map(|r| r.report.jobs_completed).collect();
        assert!(completed.windows(2).all(|w| w[0] == w[1]));
        let starts: Vec<u64> = results.iter().map(|r| r.report.start_time).collect();
        assert!(starts.windows(2).all(|w| w[0] == w[1]));
    }
}
