//! The four-method comparison engine behind Figs. 5, 6, 7 and 10 —
//! retrofitted onto the `mrsch_eval` registry + harness.
//!
//! For every workload of a suite this runs, under identical simulator
//! mechanics (same window, same reservation + EASY backfilling):
//!
//! * **MRSch** — trained with the recommended curriculum, then evaluated
//!   greedily with the dynamic goal vector,
//! * **Optimization** — the NSGA-II window scheduler (no training),
//! * **Scalar RL** — the policy-gradient baseline trained on the same
//!   curriculum with the fixed-weight scalar reward,
//! * **Heuristic** — multi-resource FCFS.
//!
//! Policy construction and training go through [`PolicySpec`] — this
//! module contains **no** policy constructors of its own; it only maps
//! the paper's experimental design (train/test splits, the recommended
//! job-set curriculum, the S1–S10 suites) onto [`EvalPlan`]s.
//! Workloads are evaluated on the chronological *test* split, never on
//! training data (§IV-A). The whole suite runs as one parallel
//! evaluation grid and results are returned in suite order.

use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_eval::{BuildContext, EvalGrid, EvalPlan, PolicySpec};
use mrsch_workload::jobset::{curriculum, CurriculumOrder};
use mrsch_workload::split::paper_split;
use serde::{Deserialize, Serialize};

/// The four compared methods, in the paper's legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodName {
    /// The DFP-based agent (this paper).
    Mrsch,
    /// Multi-objective genetic-algorithm optimization.
    Optimization,
    /// Fixed-weight scalar-reward policy gradient.
    ScalarRl,
    /// Multi-resource FCFS.
    Heuristic,
}

impl MethodName {
    /// All four, in legend order.
    pub fn all() -> [MethodName; 4] {
        [MethodName::Mrsch, MethodName::Optimization, MethodName::ScalarRl, MethodName::Heuristic]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MethodName::Mrsch => "MRSch",
            MethodName::Optimization => "Optimization",
            MethodName::ScalarRl => "Scalar RL",
            MethodName::Heuristic => "Heuristic",
        }
    }

    /// The registry entry implementing this method — the single mapping
    /// from the paper's legend to runnable policies.
    pub fn spec(self) -> PolicySpec {
        match self {
            MethodName::Mrsch => PolicySpec::mrsch(),
            MethodName::Optimization => PolicySpec::Ga,
            MethodName::ScalarRl => PolicySpec::ScalarRl,
            MethodName::Heuristic => PolicySpec::Fcfs,
        }
    }
}

/// One method × workload result.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Which scheduler produced this report.
    pub method: MethodName,
    /// Workload name ("S1" … "S10").
    pub workload: String,
    /// The full simulator report.
    pub report: SimReport,
}

/// The evaluation scenario of a workload spec: the chronological test
/// split of the base trace, truncated to the scale's evaluation size.
/// Named after the workload so grid cells read naturally.
pub fn eval_scenario(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> Scenario {
    let trace = scale.base_trace(seed);
    eval_scenario_from_split(spec, scale, seed, &paper_split(&trace))
}

fn eval_scenario_from_split(
    spec: &WorkloadSpec,
    scale: &ExpScale,
    seed: u64,
    split: &mrsch_workload::split::Split,
) -> Scenario {
    let mut test = split.test.clone();
    test.truncate(scale.eval_jobs);
    Scenario::new(spec.name.clone(), JobSource::Trace(test), spec.clone(), scale.sim_params())
        .with_seed(seed ^ 0xEA1)
}

/// The paper's recommended training curriculum (§III-D: sampled → real
/// → synthetic job sets from the chronological *train* split, repeated
/// `train_rounds` times) expressed as a scenario [`Curriculum`]: one
/// single-episode phase per job set, in training order.
pub fn paper_curriculum(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> Curriculum {
    let trace = scale.base_trace(seed);
    paper_curriculum_from_split(spec, scale, seed, &paper_split(&trace))
}

fn paper_curriculum_from_split(
    spec: &WorkloadSpec,
    scale: &ExpScale,
    seed: u64,
    split: &mrsch_workload::split::Split,
) -> Curriculum {
    let sets = curriculum(
        CurriculumOrder::recommended(),
        &split.train,
        &scale.trace_config(),
        scale.sets_per_phase,
        scale.jobs_per_set,
        seed ^ 0x5EED,
    );
    let mut cur = Curriculum::new();
    for round in 0..scale.train_rounds.max(1) {
        for (i, (kind, set)) in sets.iter().enumerate() {
            let scenario = Scenario::new(
                format!("train-r{round}-{i}-{kind:?}"),
                JobSource::Trace(set.clone()),
                spec.clone(),
                scale.sim_params(),
            )
            .with_seed(seed.wrapping_add(round as u64 * 101 + i as u64));
            cur = cur.phase(CurriculumPhase::new(scenario, 1));
        }
    }
    cur
}

/// The four-method [`EvalPlan`] for a set of workload specs at one
/// seed: one scenario per workload (test split), the paper curriculum
/// attached to each, every learnable method trained per cell.
pub fn suite_plan(specs: &[WorkloadSpec], scale: &ExpScale, seed: u64) -> EvalPlan {
    // The base trace and its chronological split are workload-spec
    // independent; synthesize and split once for the whole plan.
    let trace = scale.base_trace(seed);
    let split = paper_split(&trace);
    let scenarios: Vec<Scenario> = specs
        .iter()
        .map(|spec| eval_scenario_from_split(spec, scale, seed, &split))
        .collect();
    let mut plan = EvalPlan::new(
        scale.base_system(),
        MethodName::all().iter().map(|m| m.spec()).collect(),
        scenarios,
        vec![seed],
    )
    .trainer(TrainerConfig::default().batches_per_episode(scale.batches_per_episode));
    for (i, spec) in specs.iter().enumerate() {
        plan = plan.scenario_training(i, paper_curriculum_from_split(spec, scale, seed, &split));
    }
    plan
}

/// Map an executed grid back to `Comparison` rows in
/// `(workload, method)` order.
fn grid_to_comparisons(
    grid: &EvalGrid,
    specs: &[WorkloadSpec],
    seed: u64,
) -> Vec<Comparison> {
    let mut out = Vec::with_capacity(specs.len() * 4);
    for spec in specs {
        for method in MethodName::all() {
            let cell = grid
                .cell(&method.spec().name(), &spec.name, seed)
                .expect("plan covers every (method, workload) cell");
            out.push(Comparison {
                method,
                workload: spec.name.clone(),
                report: cell.report.clone(),
            });
        }
    }
    out
}

/// Train an MRSch agent for a workload spec at the given scale, through
/// the registry's canonical recipe (ε schedule sized to the curriculum,
/// short prediction horizons).
///
/// Exposed because Figs. 3, 8 and 9 and the ablations reuse the live
/// agent to log goal vectors and swap goal modes.
pub fn train_mrsch(
    spec: &WorkloadSpec,
    scale: &ExpScale,
    seed: u64,
    state_module: StateModuleKind,
) -> Mrsch {
    let system = spec.system_for(&scale.base_system());
    let curriculum = paper_curriculum(spec, scale, seed);
    let ctx = BuildContext {
        system: &system,
        params: scale.sim_params(),
        seed,
        train: Some(&curriculum),
        trainer: TrainerConfig::default().batches_per_episode(scale.batches_per_episode),
        dfp_config: None,
    };
    mrsch_eval::trained_mrsch(&ctx, state_module)
}

/// Run all four methods on one workload spec (a 4 × 1 × 1 grid).
pub fn run_workload(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> Vec<Comparison> {
    let specs = std::slice::from_ref(spec);
    grid_to_comparisons(&suite_plan(specs, scale, seed).run(), specs, seed)
}

/// The [`EvalGrid`] of one workload — multi-seed replication merges
/// these and reuses the grid's shared aggregation.
pub fn run_workload_grid(spec: &WorkloadSpec, scale: &ExpScale, seed: u64) -> EvalGrid {
    suite_plan(std::slice::from_ref(spec), scale, seed).run()
}

/// Run a whole suite (S1–S5 or S6–S10) as **one** parallel evaluation
/// grid, returning results in `(workload, method)` order.
pub fn run_suite(specs: &[WorkloadSpec], scale: &ExpScale, seed: u64) -> Vec<Comparison> {
    grid_to_comparisons(&suite_plan(specs, scale, seed).run(), specs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_labels_and_order() {
        let all = MethodName::all();
        assert_eq!(all[0].label(), "MRSch");
        assert_eq!(all[3].label(), "Heuristic");
    }

    #[test]
    fn methods_map_to_unique_registry_specs() {
        let names: Vec<String> = MethodName::all().iter().map(|m| m.spec().name()).collect();
        assert_eq!(names, vec!["mrsch", "ga", "scalar-rl", "fcfs"]);
    }

    #[test]
    fn paper_curriculum_covers_rounds_and_sets() {
        let scale = ExpScale::quick();
        let cur = paper_curriculum(&WorkloadSpec::s1(), &scale, 3);
        // sets_per_phase per kind × 3 kinds × train_rounds single-episode phases.
        assert_eq!(cur.total_episodes(), 3 * scale.sets_per_phase * scale.train_rounds);
        assert!(cur.phases().iter().all(|p| p.episodes == 1));
    }

    #[test]
    fn run_workload_produces_all_methods() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 30;
        scale.jobs_per_set = 20;
        scale.batches_per_episode = 2;
        let results = run_workload(&WorkloadSpec::s1(), &scale, 42);
        assert_eq!(results.len(), 4);
        for (r, m) in results.iter().zip(MethodName::all()) {
            assert_eq!(r.method, m);
            assert_eq!(r.workload, "S1");
            assert_eq!(r.report.jobs_completed, 30, "{:?} must finish all jobs", m);
        }
    }

    #[test]
    fn all_methods_see_identical_workload() {
        // Same eval scenario cell: all methods complete the same job
        // count and their reports span the same submit horizon.
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 25;
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        let results = run_workload(&WorkloadSpec::s3(), &scale, 7);
        let completed: Vec<usize> = results.iter().map(|r| r.report.jobs_completed).collect();
        assert!(completed.windows(2).all(|w| w[0] == w[1]));
        let starts: Vec<u64> = results.iter().map(|r| r.report.start_time).collect();
        assert!(starts.windows(2).all(|w| w[0] == w[1]));
    }
}
