//! Fig. 8 — fluctuation of `rBB` (the burst-buffer goal weight, Eq. 1)
//! over a 12-hour window under the S5 workload.
//!
//! A trained MRSch agent is evaluated on S5 with goal logging; the
//! resulting `(time, rBB)` series is windowed to 12 simulated hours.

use crate::comparison::train_mrsch;
use crate::csv;
use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_workload::split::paper_split;
use mrsim::SimTime;

/// The `rBB` time series.
#[derive(Clone, Debug)]
pub struct Fig8Series {
    /// `(time in seconds, rBB)` samples at each scheduling decision
    /// within the selected window.
    pub samples: Vec<(SimTime, f64)>,
    /// Start of the 12-hour window.
    pub window_start: SimTime,
}

/// Duration of the plotted window: 12 hours.
pub const WINDOW_SECS: SimTime = 12 * 3600;

/// Train on S5, evaluate with goal logging, and slice a 12-hour window
/// (starting at one quarter of the trace, a deterministic stand-in for
/// the paper's "randomly selected 12 hours").
pub fn run(scale: &ExpScale, seed: u64) -> Fig8Series {
    let spec = WorkloadSpec::s5();
    let system = spec.system_for(&scale.base_system());
    let trace = scale.base_trace(seed);
    let split = paper_split(&trace);
    let mut test = split.test;
    test.truncate(scale.eval_jobs);
    let jobs = spec.build(&test, &system, seed ^ 0xEA1);
    let mut agent = train_mrsch(&spec, scale, seed, StateModuleKind::Mlp);
    let (_report, log) = agent.evaluate_with_goal_log(&jobs);
    let horizon = log.last().map(|(t, _)| *t).unwrap_or(0);
    let window_start = horizon / 4;
    let samples = log
        .iter()
        .filter(|(t, _)| *t >= window_start && *t < window_start + WINDOW_SECS)
        .map(|(t, g)| (*t, g[1] as f64))
        .collect();
    Fig8Series { samples, window_start }
}

/// Print the series.
pub fn print(series: &Fig8Series) {
    println!(
        "Fig. 8 — rBB over a 12-hour window (start at t={} s), {} samples",
        series.window_start,
        series.samples.len()
    );
    for (t, r) in &series.samples {
        println!("  t={:>8} s  rBB={:.4}", t - series.window_start, r);
    }
    let values: Vec<f64> = series.samples.iter().map(|(_, r)| *r).collect();
    if let Some(s) = mrsch_linalg::stats::box_summary(&values) {
        println!("  range [{:.3}, {:.3}], mean {:.3}", s.min, s.max, s.mean);
    }
}

/// CSV rows for `results/fig8.csv`.
pub fn csv_rows(series: &Fig8Series) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec!["t_seconds", "r_bb"];
    let rows = series
        .samples
        .iter()
        .map(|(t, r)| vec![(t - series.window_start).to_string(), csv::f(*r)])
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_windowed_and_in_unit_interval() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 40;
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        let series = run(&scale, 31);
        assert!(!series.samples.is_empty(), "window must contain decisions");
        for (t, r) in &series.samples {
            assert!(*t >= series.window_start && *t < series.window_start + WINDOW_SECS);
            assert!((0.0..=1.0).contains(r), "rBB {r} out of [0,1]");
        }
    }

    #[test]
    fn rbb_fluctuates_under_s5() {
        // The paper's point: the weight is dynamic, not constant 0.5.
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 60;
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        let series = run(&scale, 32);
        let values: Vec<f64> = series.samples.iter().map(|(_, r)| *r).collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.01, "rBB should fluctuate: [{min}, {max}]");
    }
}
