//! §V-F — runtime overhead: per-decision latency of the MRSch agent.
//!
//! The paper reports < 2 s per decision for two-resource scheduling and
//! < 3 s for three-resource scheduling (on a 2 GHz laptop CPU, at full
//! Theta network size), far below the 15–30 s production schedulers
//! allow. This module measures the same quantity: wall time of one
//! greedy action selection (state encoding + network forward + argmax),
//! at both the scaled and the paper's full Theta network size.

use mrsch::prelude::*;
use std::time::{Duration, Instant};

/// Latency measurement for one configuration.
#[derive(Clone, Debug)]
pub struct OverheadResult {
    /// Label ("scaled-2res", "theta-2res", "theta-3res").
    pub label: String,
    /// Number of resources.
    pub resources: usize,
    /// State-vector dimension.
    pub state_dim: usize,
    /// Mean per-decision latency.
    pub mean: Duration,
    /// Max observed latency.
    pub max: Duration,
    /// Decisions timed.
    pub samples: usize,
}

/// Time `samples` greedy decisions of a fresh agent on a synthetic dense
/// state (worst case: full window, fully occupied machine).
pub fn measure(
    system: SystemConfig,
    window: usize,
    theta_arch: bool,
    samples: usize,
    label: &str,
) -> OverheadResult {
    let encoder = StateEncoder::with_hour_scale(system.clone(), window);
    let m = system.num_resources();
    let cfg = if theta_arch {
        DfpConfig::theta(encoder.state_dim(), m, window)
    } else {
        DfpConfig::scaled(encoder.state_dim(), m, window)
    };
    let mut agent = DfpAgent::new(cfg, 7);
    let state = vec![0.5f32; encoder.state_dim()];
    let meas = vec![0.5f32; m];
    let goal = vec![1.0f32 / m as f32; m];
    let valid = vec![true; window];
    // Warm-up (first call touches freshly allocated weights).
    let _ = agent.act(&state, &meas, &goal, &valid, false);
    let mut total = Duration::ZERO;
    let mut max = Duration::ZERO;
    for _ in 0..samples {
        let t0 = Instant::now();
        let action = agent.act(&state, &meas, &goal, &valid, false);
        let dt = t0.elapsed();
        assert!(action.is_some());
        total += dt;
        max = max.max(dt);
    }
    OverheadResult {
        label: label.to_string(),
        resources: m,
        state_dim: encoder.state_dim(),
        mean: total / samples.max(1) as u32,
        max,
        samples,
    }
}

/// Run the three configurations of §V-F.
pub fn run(samples: usize) -> Vec<OverheadResult> {
    vec![
        measure(SystemConfig::scaled(), 10, false, samples, "scaled-2res"),
        measure(SystemConfig::theta(), 10, true, samples, "theta-2res"),
        measure(
            SystemConfig::three_resource(4392, 1293, 500),
            10,
            true,
            samples,
            "theta-3res",
        ),
    ]
}

/// Print the measurements against the paper's bounds.
pub fn print(results: &[OverheadResult]) {
    println!("§V-F — decision latency (paper bound: <2 s two-resource, <3 s three-resource)");
    for r in results {
        println!(
            "  {:<12} R={} state_dim={:<6} mean {:>10.3?} max {:>10.3?} ({} samples)",
            r.label, r.resources, r.state_dim, r.mean, r.max, r.samples
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_decision_is_fast() {
        let r = measure(SystemConfig::scaled(), 10, false, 5, "scaled");
        assert!(r.mean < Duration::from_millis(200), "scaled mean {:?}", r.mean);
    }

    #[test]
    #[ignore = "experiment-scale (full 11410-dim Theta net); run with --ignored / in CI"]
    fn theta_scale_meets_paper_bound() {
        // Full 11410-dim state with the 4000/1000/512 architecture must
        // decide in far less than the paper's 2 s budget.
        let r = measure(SystemConfig::theta(), 10, true, 3, "theta");
        assert_eq!(r.state_dim, 11410);
        assert!(
            r.mean < Duration::from_secs(2),
            "theta-scale decision {:?} exceeds the paper's bound",
            r.mean
        );
    }
}
