//! Command-line interface (`mrsch_cli`): train, evaluate and compare
//! schedulers on SWF traces without writing Rust.
//!
//! ```text
//! mrsch_cli simulate --swf trace.swf --workload S4 --nodes 256 --bb 75 \
//!           --policy fcfs|sjf|ljf|ga|mrsch [--window 10] [--seed 1] \
//!           [--train-episodes 4] [--model out.ckpt | --load model.ckpt] \
//!           [--curriculum clean|harden] [--workers N] \
//!           [--cancel-frac F] [--overrun-frac F] [--drain-frac F] \
//!           [--replay-swf-cancels | --replay-swf-cancels-faithful]
//! ```
//!
//! `--curriculum harden` trains MRSch through the clean → cancel-heavy
//! → drain-heavy scenario curriculum (episodes per phase =
//! `--train-episodes`) with `--workers` parallel rollout threads;
//! worker count never changes the result, only the wall-clock.
//!
//! Argument parsing is hand-rolled (the offline dependency policy has no
//! clap) and lives here, separately from the thin binary, so it is unit
//! tested.

use crate::csv;
use mrsch::prelude::*;
use mrsch_baselines::heuristics::{ListOrder, ListPolicy};
use mrsch_baselines::{FcfsPolicy, GaPolicy};
use mrsch_workload::disruption::{
    swf_cancel_events, swf_relative_cancels, DisruptionConfig, DrainSpec,
};
use mrsch_workload::swf::parse_swf;
use mrsch_workload::theta::TraceJob;
use mrsim::{InjectedEvent, SimTime};

/// Which scheduler the CLI should run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliPolicy {
    /// FCFS (the paper's Heuristic).
    Fcfs,
    /// Shortest-job-first.
    Sjf,
    /// Longest-job-first.
    Ljf,
    /// NSGA-II window optimizer.
    Ga,
    /// The MRSch DFP agent (optionally trained first).
    Mrsch,
}

/// Parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct CliArgs {
    /// Path to the SWF trace.
    pub swf: String,
    /// Workload name, "S1"…"S10".
    pub workload: String,
    /// Machine nodes.
    pub nodes: u64,
    /// Burst-buffer units.
    pub bb: u64,
    /// Scheduler to run.
    pub policy: CliPolicy,
    /// Window size.
    pub window: usize,
    /// RNG seed.
    pub seed: u64,
    /// Training episodes before evaluation (MRSch only).
    pub train_episodes: usize,
    /// Write the trained model checkpoint here (MRSch only).
    pub model_out: Option<String>,
    /// Load a checkpoint instead of training (MRSch only).
    pub model_in: Option<String>,
    /// Fraction of evaluation jobs cancelled by synthetic users.
    pub cancel_frac: f64,
    /// Fraction of evaluation jobs whose runtime overruns the estimate.
    pub overrun_frac: f64,
    /// Runtime multiplier for overrunners (on the estimate).
    pub overrun_factor: f64,
    /// Fraction of nodes drained mid-trace (0 disables the drain).
    pub drain_frac: f64,
    /// Drain start time in seconds.
    pub drain_start: SimTime,
    /// Drain duration in seconds (0 = permanent).
    pub drain_duration: SimTime,
    /// Kill jobs at their walltime estimate (required for overruns).
    pub enforce_walltime: bool,
    /// Periodic tick interval for time-driven policies (seconds).
    pub tick: Option<SimTime>,
    /// Replay the SWF trace's own cancelled-status jobs as cancels at
    /// `submit + recorded_runtime` (the absolute-time proxy — the
    /// pre-existing behavior, kept behind this pre-existing flag).
    pub replay_swf_cancels: bool,
    /// Replay SWF cancels wait-time-aware: each fires at
    /// `start + recorded_runtime` of the *simulated* run.
    pub replay_swf_cancels_faithful: bool,
    /// Train MRSch through a scenario curriculum ("harden" = clean →
    /// cancel-heavy → drain-heavy) instead of plain repeated episodes.
    pub curriculum: Option<String>,
    /// Parallel rollout worker threads for curriculum training.
    pub workers: usize,
}

impl CliArgs {
    /// True when any disruption mechanism is enabled.
    pub fn disruptions_enabled(&self) -> bool {
        self.cancel_frac > 0.0
            || self.overrun_frac > 0.0
            || self.drain_frac > 0.0
            || self.replay_swf_cancels
            || self.replay_swf_cancels_faithful
    }
}

/// Parse `simulate`-style arguments (everything after the subcommand).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut out = CliArgs {
        swf: String::new(),
        workload: "S1".into(),
        nodes: 256,
        bb: 75,
        policy: CliPolicy::Fcfs,
        window: 10,
        seed: 1,
        train_episodes: 4,
        model_out: None,
        model_in: None,
        cancel_frac: 0.0,
        overrun_frac: 0.0,
        overrun_factor: 1.5,
        drain_frac: 0.0,
        drain_start: 0,
        drain_duration: 0,
        enforce_walltime: false,
        tick: None,
        replay_swf_cancels: false,
        replay_swf_cancels_faithful: false,
        curriculum: None,
        workers: 1,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--swf" => out.swf = value("--swf")?,
            "--workload" => out.workload = value("--workload")?.to_uppercase(),
            "--nodes" => {
                out.nodes = value("--nodes")?.parse().map_err(|_| "--nodes: not a number")?
            }
            "--bb" => out.bb = value("--bb")?.parse().map_err(|_| "--bb: not a number")?,
            "--policy" => {
                out.policy = match value("--policy")?.as_str() {
                    "fcfs" => CliPolicy::Fcfs,
                    "sjf" => CliPolicy::Sjf,
                    "ljf" => CliPolicy::Ljf,
                    "ga" => CliPolicy::Ga,
                    "mrsch" => CliPolicy::Mrsch,
                    other => return Err(format!("unknown policy '{other}'")),
                }
            }
            "--window" => {
                out.window =
                    value("--window")?.parse().map_err(|_| "--window: not a number")?
            }
            "--seed" => {
                out.seed = value("--seed")?.parse().map_err(|_| "--seed: not a number")?
            }
            "--train-episodes" => {
                out.train_episodes = value("--train-episodes")?
                    .parse()
                    .map_err(|_| "--train-episodes: not a number")?
            }
            "--model" => out.model_out = Some(value("--model")?),
            "--load" => out.model_in = Some(value("--load")?),
            "--cancel-frac" => {
                out.cancel_frac =
                    value("--cancel-frac")?.parse().map_err(|_| "--cancel-frac: not a number")?
            }
            "--overrun-frac" => {
                out.overrun_frac = value("--overrun-frac")?
                    .parse()
                    .map_err(|_| "--overrun-frac: not a number")?;
                out.enforce_walltime = true; // overruns are pointless otherwise
            }
            "--overrun-factor" => {
                out.overrun_factor = value("--overrun-factor")?
                    .parse()
                    .map_err(|_| "--overrun-factor: not a number")?
            }
            "--drain-frac" => {
                out.drain_frac =
                    value("--drain-frac")?.parse().map_err(|_| "--drain-frac: not a number")?
            }
            "--drain-start" => {
                out.drain_start =
                    value("--drain-start")?.parse().map_err(|_| "--drain-start: not a number")?
            }
            "--drain-duration" => {
                out.drain_duration = value("--drain-duration")?
                    .parse()
                    .map_err(|_| "--drain-duration: not a number")?
            }
            "--enforce-walltime" => out.enforce_walltime = true,
            "--tick" => {
                out.tick =
                    Some(value("--tick")?.parse().map_err(|_| "--tick: not a number")?)
            }
            "--replay-swf-cancels" => out.replay_swf_cancels = true,
            "--replay-swf-cancels-faithful" => out.replay_swf_cancels_faithful = true,
            "--curriculum" => out.curriculum = Some(value("--curriculum")?.to_lowercase()),
            "--workers" => {
                out.workers =
                    value("--workers")?.parse().map_err(|_| "--workers: not a number")?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if out.swf.is_empty() {
        return Err("--swf <file> is required".into());
    }
    if out.window == 0 {
        return Err("--window must be positive".into());
    }
    if out.workers == 0 {
        return Err("--workers must be positive".into());
    }
    if let Some(c) = &out.curriculum {
        if !["clean", "harden"].contains(&c.as_str()) {
            return Err(format!("unknown curriculum '{c}' (expected clean|harden)"));
        }
    }
    for (flag, v) in [
        ("--cancel-frac", out.cancel_frac),
        ("--overrun-frac", out.overrun_frac),
        ("--drain-frac", out.drain_frac),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{flag} must be in [0, 1]"));
        }
    }
    if out.overrun_factor <= 1.0 {
        return Err("--overrun-factor must exceed 1".into());
    }
    find_spec(&out.workload)?;
    Ok(out)
}

/// Resolve a workload name to its spec.
pub fn find_spec(name: &str) -> Result<WorkloadSpec, String> {
    let mut all = WorkloadSpec::two_resource_suite();
    all.extend(WorkloadSpec::three_resource_suite());
    all.into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown workload '{name}' (expected S1..S10)"))
}

/// Build the evaluation disruption set for a parsed invocation: the
/// (possibly overrun-modified) jobs, the events to inject, and any
/// wait-time-aware relative cancels (faithful SWF replay).
fn disruptions_for(
    args: &CliArgs,
    jobs: Vec<Job>,
    system: &SystemConfig,
    trace: &[TraceJob],
) -> (Vec<Job>, Vec<InjectedEvent>, Vec<(usize, SimTime)>) {
    if !args.disruptions_enabled() {
        return (jobs, Vec::new(), Vec::new());
    }
    let mut drains = Vec::new();
    if args.drain_frac > 0.0 {
        drains.push(DrainSpec {
            resource: 0,
            fraction: args.drain_frac,
            at: args.drain_start,
            duration: args.drain_duration,
        });
    }
    let cfg = DisruptionConfig {
        cancel_fraction: args.cancel_frac,
        overrun_fraction: args.overrun_frac,
        overrun_factor: args.overrun_factor,
        drains,
    };
    let mut disrupted = cfg.synthesize(&jobs, system, args.seed ^ 0x5eed);
    let mut relative = Vec::new();
    if args.replay_swf_cancels_faithful {
        relative = swf_relative_cancels(&disrupted.jobs, trace);
    } else if args.replay_swf_cancels {
        disrupted.events.extend(swf_cancel_events(&disrupted.jobs, trace));
    }
    (disrupted.jobs, disrupted.events, relative)
}

/// The disruption-hardening curriculum a `--curriculum harden` run
/// trains on: the CLI's own disruption knobs define the disrupted
/// phases (falling back to a representative default when a knob is
/// unset), layered on the training slice of the trace.
fn cli_curriculum(args: &CliArgs, train_trace: &[TraceJob], spec: &WorkloadSpec) -> Curriculum {
    let clean = Scenario::new(
        "clean",
        JobSource::Trace(train_trace.to_vec()),
        spec.clone(),
        SimParams {
            enforce_walltime: args.enforce_walltime,
            tick: args.tick,
            ..SimParams::new(args.window, true)
        },
    )
    .with_seed(args.seed ^ 0xc0a1);
    if args.curriculum.as_deref() == Some("clean") {
        return Curriculum::new().phase(CurriculumPhase::new(clean, args.train_episodes.max(1)));
    }
    let cancel_heavy = DisruptionConfig {
        cancel_fraction: if args.cancel_frac > 0.0 { args.cancel_frac } else { 0.2 },
        overrun_fraction: if args.overrun_frac > 0.0 { args.overrun_frac } else { 0.1 },
        overrun_factor: args.overrun_factor,
        drains: Vec::new(),
    };
    let last_submit = train_trace.iter().map(|t| t.submit).max().unwrap_or(0);
    let drain_heavy = DisruptionConfig {
        drains: vec![DrainSpec {
            resource: 0,
            fraction: if args.drain_frac > 0.0 { args.drain_frac } else { 0.25 },
            at: if args.drain_start > 0 { args.drain_start } else { last_submit / 3 },
            duration: if args.drain_duration > 0 { args.drain_duration } else { 3600 },
        }],
        ..DisruptionConfig::default()
    };
    Curriculum::disruption_hardening(
        clean,
        cancel_heavy,
        drain_heavy,
        args.train_episodes.max(1),
    )
}

/// Run a parsed invocation over an already-loaded trace, returning the
/// simulator report (separated from I/O for testability).
pub fn run_on_trace(args: &CliArgs, trace: &[TraceJob]) -> Result<SimReport, String> {
    let spec = find_spec(&args.workload)?;
    let base = SystemConfig::two_resource(args.nodes, args.bb);
    let system = spec.system_for(&base);
    let jobs = spec.build(trace, &system, args.seed);
    let (jobs, events, relative_cancels) = disruptions_for(args, jobs, &system, trace);
    let params = SimParams {
        enforce_walltime: args.enforce_walltime,
        tick: args.tick,
        ..SimParams::new(args.window, true)
    };
    let run_baseline = |policy: &mut dyn Policy| -> Result<SimReport, String> {
        let mut sim =
            Simulator::new(system.clone(), jobs.clone(), params).map_err(|e| e.to_string())?;
        sim.inject_all(&events).map_err(|e| e.to_string())?;
        for &(id, delay) in &relative_cancels {
            sim.schedule_cancel_after_start(id, delay).map_err(|e| e.to_string())?;
        }
        Ok(sim.run(policy))
    };
    let report = match args.policy {
        CliPolicy::Fcfs => run_baseline(&mut FcfsPolicy::default())?,
        CliPolicy::Sjf => run_baseline(&mut ListPolicy::new(ListOrder::ShortestFirst))?,
        CliPolicy::Ljf => run_baseline(&mut ListPolicy::new(ListOrder::LongestFirst))?,
        CliPolicy::Ga => run_baseline(&mut GaPolicy::with_seed(args.seed))?,
        CliPolicy::Mrsch => {
            let trainer = TrainerConfig::default().workers(args.workers);
            let mut agent = MrschBuilder::new(system.clone(), params)
                .seed(args.seed)
                .trainer(trainer)
                .build();
            if let Some(path) = &args.model_in {
                let data = std::fs::read(path).map_err(|e| format!("--load: {e}"))?;
                agent
                    .agent_mut()
                    .network_mut()
                    .load_checkpoint(&data)
                    .map_err(|e| format!("--load: {e}"))?;
            } else {
                // Train on the first 60% of the trace, evaluate on all of it.
                let cut = trace.len() * 3 / 5;
                let train_spec = find_spec(&args.workload)?;
                if args.curriculum.is_some() {
                    let curriculum =
                        cli_curriculum(args, &trace[..cut.max(1)], &train_spec);
                    agent.train_with_curriculum(&curriculum);
                } else {
                    let train_jobs = train_spec.build(
                        &trace[..cut.max(1)],
                        agent.system(),
                        args.seed + 1,
                    );
                    for _ in 0..args.train_episodes {
                        agent.train_episode(&train_jobs);
                    }
                }
            }
            if let Some(path) = &args.model_out {
                let ckpt = agent.agent_mut().network_mut().save_checkpoint();
                std::fs::write(path, &ckpt).map_err(|e| format!("--model: {e}"))?;
            }
            agent
                .evaluate_disrupted_replay(&jobs, &events, &relative_cancels)
                .map_err(|e| e.to_string())?
        }
    };
    Ok(report)
}

/// Full entry point: load the SWF, run, and render the report.
pub fn main_with_args(args: &[String]) -> Result<String, String> {
    let parsed = parse_args(args)?;
    let text = std::fs::read_to_string(&parsed.swf)
        .map_err(|e| format!("reading {}: {e}", parsed.swf))?;
    let trace = parse_swf(&text).map_err(|e| e.to_string())?;
    if trace.is_empty() {
        return Err("trace contains no usable jobs".into());
    }
    let report = run_on_trace(&parsed, &trace)?;
    Ok(render_report(&parsed, &report))
}

/// Render a report as the CLI's output table.
pub fn render_report(args: &CliArgs, report: &SimReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "policy={:?} workload={} jobs={} makespan={}s\n",
        args.policy, args.workload, report.jobs_completed, report.makespan
    ));
    for (name, util) in report.resource_names.iter().zip(&report.resource_utilization) {
        out.push_str(&format!("  {name:<18} utilization {}\n", csv::f(*util)));
    }
    out.push_str(&format!(
        "  avg wait {} h | max wait {} h | avg slowdown {} | backfilled {}\n",
        csv::f(report.avg_wait_hours()),
        csv::f(report.max_wait as f64 / 3600.0),
        csv::f(report.avg_slowdown),
        report.backfilled_jobs
    ));
    if report.jobs_cancelled + report.jobs_killed > 0
        || report.capacity_lost_unit_seconds.iter().any(|&l| l > 0.0)
    {
        let lost: Vec<String> = report
            .resource_names
            .iter()
            .zip(&report.capacity_lost_unit_seconds)
            .map(|(n, l)| format!("{n}={}", csv::f(*l)))
            .collect();
        out.push_str(&format!(
            "  disruptions: cancelled {} | killed {} | lost unit-seconds {}\n",
            report.jobs_cancelled,
            report.jobs_killed,
            lost.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsch_workload::theta::{SwfStatus, ThetaConfig};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--workload", "s4", "--nodes", "64", "--bb", "20",
            "--policy", "mrsch", "--window", "5", "--seed", "9",
            "--train-episodes", "2", "--model", "out.ckpt",
        ]))
        .unwrap();
        assert_eq!(a.workload, "S4");
        assert_eq!(a.nodes, 64);
        assert_eq!(a.policy, CliPolicy::Mrsch);
        assert_eq!(a.window, 5);
        assert_eq!(a.model_out.as_deref(), Some("out.ckpt"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["--workload", "S1"])).is_err(), "missing swf");
        assert!(parse_args(&args(&["--swf", "t", "--policy", "bogus"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--workload", "S99"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--nodes"])).is_err(), "dangling flag");
        assert!(parse_args(&args(&["--swf", "t", "--frobnicate", "1"])).is_err());
    }

    #[test]
    fn runs_every_policy_on_a_synthetic_trace() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(40) }.generate(3);
        for policy in ["fcfs", "sjf", "ljf", "ga"] {
            let a = parse_args(&args(&[
                "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
                "--policy", policy, "--window", "4",
            ]))
            .unwrap();
            let report = run_on_trace(&a, &trace).unwrap();
            assert_eq!(report.jobs_completed, 40, "{policy}");
        }
    }

    #[test]
    fn mrsch_policy_trains_and_checkpoints() {
        let dir = std::env::temp_dir().join("mrsch_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.ckpt");
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(40) }.generate(4);
        let a = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S2", "--nodes", "16", "--bb", "8",
            "--policy", "mrsch", "--window", "4", "--train-episodes", "1",
            "--model", model.to_str().unwrap(),
        ]))
        .unwrap();
        let r1 = run_on_trace(&a, &trace).unwrap();
        assert_eq!(r1.jobs_completed, 40);
        assert!(model.exists(), "checkpoint written");
        // Reload: must reproduce the identical schedule.
        let b = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S2", "--nodes", "16", "--bb", "8",
            "--policy", "mrsch", "--window", "4",
            "--load", model.to_str().unwrap(),
        ]))
        .unwrap();
        let r2 = run_on_trace(&b, &trace).unwrap();
        assert_eq!(r1.records, r2.records, "checkpoint roundtrip via CLI");
    }

    #[test]
    fn parses_disruption_flags() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--cancel-frac", "0.1", "--overrun-frac", "0.05",
            "--overrun-factor", "2.0", "--drain-frac", "0.25", "--drain-start", "5000",
            "--drain-duration", "3000", "--tick", "600",
        ]))
        .unwrap();
        assert_eq!(a.cancel_frac, 0.1);
        assert_eq!(a.overrun_frac, 0.05);
        assert!(a.enforce_walltime, "--overrun-frac implies walltime enforcement");
        assert_eq!(a.drain_frac, 0.25);
        assert_eq!(a.tick, Some(600));
        assert!(a.disruptions_enabled());
        assert!(parse_args(&args(&["--swf", "t", "--cancel-frac", "1.5"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--overrun-factor", "0.5"])).is_err());
    }

    #[test]
    fn disrupted_run_accounts_for_every_job() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(60) }.generate(6);
        let a = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
            "--policy", "fcfs", "--window", "4", "--cancel-frac", "0.15",
            "--overrun-frac", "0.15", "--drain-frac", "0.25",
            "--drain-start", "2000", "--drain-duration", "4000",
        ]))
        .unwrap();
        let report = run_on_trace(&a, &trace).unwrap();
        assert!(report.all_jobs_accounted(60), "finished+cancelled+killed == trace");
        assert!(report.jobs_cancelled > 0);
        assert!(report.jobs_killed > 0);
        assert!(report.capacity_lost_unit_seconds[0] > 0.0);
        let text = render_report(&a, &report);
        assert!(text.contains("disruptions:"), "render shows the disruption line");
    }

    #[test]
    fn parses_curriculum_and_worker_flags() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--curriculum", "HARDEN", "--workers", "4",
            "--replay-swf-cancels-faithful",
        ]))
        .unwrap();
        assert_eq!(a.curriculum.as_deref(), Some("harden"));
        assert_eq!(a.workers, 4);
        assert!(a.replay_swf_cancels_faithful);
        assert!(a.disruptions_enabled());
        assert!(parse_args(&args(&["--swf", "t", "--curriculum", "bogus"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--workers", "0"])).is_err());
    }

    #[test]
    #[ignore = "experiment-scale (trains two curriculum agents); run with --ignored / in CI"]
    fn curriculum_training_runs_and_is_worker_invariant() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(40) }.generate(8);
        let run = |workers: &str| {
            let a = parse_args(&args(&[
                "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
                "--policy", "mrsch", "--window", "4", "--train-episodes", "1",
                "--curriculum", "harden", "--workers", workers,
            ]))
            .unwrap();
            run_on_trace(&a, &trace).unwrap()
        };
        let serial = run("1");
        let parallel = run("2");
        assert_eq!(serial.jobs_completed, 40);
        assert_eq!(serial.records, parallel.records, "worker count is wall-clock only");
    }

    #[test]
    fn faithful_swf_replay_cancels_at_simulated_start() {
        // A trace whose cancelled job waits: under the faithful replay
        // its end is start + recorded lifetime, not submit + lifetime.
        let mut trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(30) }.generate(9);
        for t in trace.iter_mut().take(10) {
            t.status = SwfStatus::Cancelled;
        }
        let a = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
            "--policy", "fcfs", "--window", "4", "--replay-swf-cancels-faithful",
        ]))
        .unwrap();
        let report = run_on_trace(&a, &trace).unwrap();
        // Started-then-cancelled jobs end exactly at start + recorded runtime.
        let cancelled: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Cancelled)
            .collect();
        assert!(!cancelled.is_empty(), "some replayed cancels landed");
        for r in &cancelled {
            assert_eq!(r.end, r.start + trace[r.id].runtime);
        }
        assert!(report.all_jobs_accounted(30));
    }

    #[test]
    fn render_includes_all_metrics() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(20) }.generate(5);
        let a = parse_args(&args(&[
            "--swf", "x.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
        ]))
        .unwrap();
        let report = run_on_trace(&a, &trace).unwrap();
        let text = render_report(&a, &report);
        assert!(text.contains("utilization"));
        assert!(text.contains("avg wait"));
        assert!(text.contains("workload=S1"));
    }
}
