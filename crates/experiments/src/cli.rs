//! Command-line interface (`mrsch_cli`): train, evaluate and compare
//! schedulers on SWF traces without writing Rust.
//!
//! ```text
//! mrsch_cli simulate --swf trace.swf --workload S4 --nodes 256 --bb 75 \
//!           --policy fcfs|sjf|ljf|ga|mrsch [--window 10] [--seed 1] \
//!           [--train-episodes 4] [--model out.ckpt | --load model.ckpt] \
//!           [--curriculum clean|harden] [--workers N] \
//!           [--pipeline [--max-staleness K]] \
//!           [--cancel-frac F] [--overrun-frac F] [--drain-frac F] \
//!           [--replay-swf-cancels | --replay-swf-cancels-faithful] \
//!           [--snapshot-every N --snapshot-dir DIR]
//!
//! mrsch_cli resume --from DIR/shard-0000.snap [--policy fcfs|sjf|ljf|ga]
//!
//! mrsch_cli evaluate --policy fcfs,mrsch[,all,...] \
//!           --scenario clean|cancel-heavy|overrun-heavy|drain|mixed \
//!                      |dag:chain[:L]|dag:fanout[:W] \
//!                      |bursty:diurnal[:PCT]|bursty:spike[:BOOST] \
//!                      |energy:drain[,...] \
//!           --seeds 0..4 [--workload S1] [--nodes N] [--bb B] [--window W] \
//!           [--jobs N | --swf FILE] [--train-episodes K] [--workers N] \
//!           [--policy-cache DIR [--require-warm-cache]] [--csv grid.csv]
//! ```
//!
//! `evaluate` runs the full registry-driven evaluation grid
//! (`policies × scenarios × seeds`) through `mrsch_eval::EvalPlan` and
//! prints the **seed-aggregated CSV** to stdout (`--csv` additionally
//! writes the per-cell grid). `--scenario` takes scenario-registry
//! spec strings (`mrsch_eval::ScenarioSpec`): the disruption presets,
//! workflow-DAG families (`dag:chain:4`, `dag:fanout:3`), bursty open
//! arrival streams (`bursty:diurnal:60`, `bursty:spike:6`) and
//! `energy:drain`; `all` expands to the whole registry. Grid CSVs carry
//! the per-episode critical-path lower bound (`cp_bound_s`), the
//! relative regret against it, and metered energy (`energy_kwh`). `--curriculum harden` trains MRSch
//! through the clean → cancel-heavy → drain-heavy scenario curriculum
//! (episodes per phase = `--train-episodes`) with `--workers` parallel
//! rollout threads; worker count never changes the result, only the
//! wall-clock. `--pipeline` overlaps rollout and learning
//! (lockstep/bit-identical by default; `--max-staleness K` with `K > 0`
//! opts into bounded-staleness nondeterminism for more throughput).
//! `--policy-cache DIR` memoizes trained policies content-addressed by
//! their full training configuration, so repeated grids skip training;
//! `--require-warm-cache` fails the run if any cell had to retrain.
//!
//! Argument parsing is hand-rolled (the offline dependency policy has no
//! clap) and lives here, separately from the thin binary, so it is unit
//! tested.

use crate::csv;
use mrsch::prelude::*;
use mrsch_baselines::heuristics::{ListOrder, ListPolicy};
use mrsch_baselines::{FcfsPolicy, GaPolicy};
use mrsch_eval::{EvalPlan, PolicySpec};
use mrsch_workload::disruption::{
    swf_cancel_events, swf_relative_cancels, DisruptionConfig, DrainSpec,
};
use mrsch_workload::swf::parse_swf;
use mrsch_workload::theta::TraceJob;
use mrsim::{InjectedEvent, SimTime};

/// Which scheduler the CLI should run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliPolicy {
    /// FCFS (the paper's Heuristic).
    Fcfs,
    /// Shortest-job-first.
    Sjf,
    /// Longest-job-first.
    Ljf,
    /// NSGA-II window optimizer.
    Ga,
    /// The MRSch DFP agent (optionally trained first).
    Mrsch,
}

/// Parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct CliArgs {
    /// Path to the SWF trace.
    pub swf: String,
    /// Workload name, "S1"…"S10".
    pub workload: String,
    /// Machine nodes.
    pub nodes: u64,
    /// Burst-buffer units.
    pub bb: u64,
    /// Scheduler to run.
    pub policy: CliPolicy,
    /// Window size.
    pub window: usize,
    /// RNG seed.
    pub seed: u64,
    /// Training episodes before evaluation (MRSch only).
    pub train_episodes: usize,
    /// Write the trained model checkpoint here (MRSch only).
    pub model_out: Option<String>,
    /// Load a checkpoint instead of training (MRSch only).
    pub model_in: Option<String>,
    /// Fraction of evaluation jobs cancelled by synthetic users.
    pub cancel_frac: f64,
    /// Fraction of evaluation jobs whose runtime overruns the estimate.
    pub overrun_frac: f64,
    /// Runtime multiplier for overrunners (on the estimate).
    pub overrun_factor: f64,
    /// Fraction of nodes drained mid-trace (0 disables the drain).
    pub drain_frac: f64,
    /// Drain start time in seconds.
    pub drain_start: SimTime,
    /// Drain duration in seconds (0 = permanent).
    pub drain_duration: SimTime,
    /// Kill jobs at their walltime estimate (required for overruns).
    pub enforce_walltime: bool,
    /// Periodic tick interval for time-driven policies (seconds).
    pub tick: Option<SimTime>,
    /// Replay the SWF trace's own cancelled-status jobs as cancels at
    /// `submit + recorded_runtime` (the absolute-time proxy — the
    /// pre-existing behavior, kept behind this pre-existing flag).
    pub replay_swf_cancels: bool,
    /// Replay SWF cancels wait-time-aware: each fires at
    /// `start + recorded_runtime` of the *simulated* run.
    pub replay_swf_cancels_faithful: bool,
    /// Train MRSch through a scenario curriculum ("harden" = clean →
    /// cancel-heavy → drain-heavy) instead of plain repeated episodes.
    pub curriculum: Option<String>,
    /// Parallel rollout worker threads for curriculum training.
    pub workers: usize,
    /// Pipeline rollout against published snapshots instead of barrier
    /// round-synchronization (lockstep unless `max_staleness > 0`).
    pub pipeline: bool,
    /// Staleness bound for pipelined training; `> 0` explicitly opts
    /// into nondeterministic (but bounded-lag) learning.
    pub max_staleness: usize,
    /// Write a checkpoint every N event batches (baseline policies).
    pub snapshot_every: Option<u64>,
    /// Directory receiving the periodic `shard-0000.snap` checkpoint.
    pub snapshot_dir: Option<String>,
}

impl CliArgs {
    /// True when any disruption mechanism is enabled.
    pub fn disruptions_enabled(&self) -> bool {
        self.cancel_frac > 0.0
            || self.overrun_frac > 0.0
            || self.drain_frac > 0.0
            || self.replay_swf_cancels
            || self.replay_swf_cancels_faithful
    }
}

/// Parse `simulate`-style arguments (everything after the subcommand).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut out = CliArgs {
        swf: String::new(),
        workload: "S1".into(),
        nodes: 256,
        bb: 75,
        policy: CliPolicy::Fcfs,
        window: 10,
        seed: 1,
        train_episodes: 4,
        model_out: None,
        model_in: None,
        cancel_frac: 0.0,
        overrun_frac: 0.0,
        overrun_factor: 1.5,
        drain_frac: 0.0,
        drain_start: 0,
        drain_duration: 0,
        enforce_walltime: false,
        tick: None,
        replay_swf_cancels: false,
        replay_swf_cancels_faithful: false,
        curriculum: None,
        workers: 1,
        pipeline: false,
        max_staleness: 0,
        snapshot_every: None,
        snapshot_dir: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--swf" => out.swf = value("--swf")?,
            "--workload" => out.workload = value("--workload")?.to_uppercase(),
            "--nodes" => {
                out.nodes = value("--nodes")?.parse().map_err(|_| "--nodes: not a number")?
            }
            "--bb" => out.bb = value("--bb")?.parse().map_err(|_| "--bb: not a number")?,
            "--policy" => {
                out.policy = match value("--policy")?.as_str() {
                    "fcfs" => CliPolicy::Fcfs,
                    "sjf" => CliPolicy::Sjf,
                    "ljf" => CliPolicy::Ljf,
                    "ga" => CliPolicy::Ga,
                    "mrsch" => CliPolicy::Mrsch,
                    other => return Err(format!("unknown policy '{other}'")),
                }
            }
            "--window" => {
                out.window =
                    value("--window")?.parse().map_err(|_| "--window: not a number")?
            }
            "--seed" => {
                out.seed = value("--seed")?.parse().map_err(|_| "--seed: not a number")?
            }
            "--train-episodes" => {
                out.train_episodes = value("--train-episodes")?
                    .parse()
                    .map_err(|_| "--train-episodes: not a number")?
            }
            "--model" => out.model_out = Some(value("--model")?),
            "--load" => out.model_in = Some(value("--load")?),
            "--cancel-frac" => {
                out.cancel_frac =
                    value("--cancel-frac")?.parse().map_err(|_| "--cancel-frac: not a number")?
            }
            "--overrun-frac" => {
                out.overrun_frac = value("--overrun-frac")?
                    .parse()
                    .map_err(|_| "--overrun-frac: not a number")?;
                out.enforce_walltime = true; // overruns are pointless otherwise
            }
            "--overrun-factor" => {
                out.overrun_factor = value("--overrun-factor")?
                    .parse()
                    .map_err(|_| "--overrun-factor: not a number")?
            }
            "--drain-frac" => {
                out.drain_frac =
                    value("--drain-frac")?.parse().map_err(|_| "--drain-frac: not a number")?
            }
            "--drain-start" => {
                out.drain_start =
                    value("--drain-start")?.parse().map_err(|_| "--drain-start: not a number")?
            }
            "--drain-duration" => {
                out.drain_duration = value("--drain-duration")?
                    .parse()
                    .map_err(|_| "--drain-duration: not a number")?
            }
            "--enforce-walltime" => out.enforce_walltime = true,
            "--tick" => {
                out.tick =
                    Some(value("--tick")?.parse().map_err(|_| "--tick: not a number")?)
            }
            "--replay-swf-cancels" => out.replay_swf_cancels = true,
            "--replay-swf-cancels-faithful" => out.replay_swf_cancels_faithful = true,
            "--curriculum" => out.curriculum = Some(value("--curriculum")?.to_lowercase()),
            "--workers" => {
                out.workers =
                    value("--workers")?.parse().map_err(|_| "--workers: not a number")?
            }
            "--pipeline" => out.pipeline = true,
            "--max-staleness" => {
                out.max_staleness = value("--max-staleness")?
                    .parse()
                    .map_err(|_| "--max-staleness: not a number")?
            }
            "--snapshot-every" => {
                out.snapshot_every = Some(
                    value("--snapshot-every")?
                        .parse()
                        .map_err(|_| "--snapshot-every: not a number")?,
                )
            }
            "--snapshot-dir" => out.snapshot_dir = Some(value("--snapshot-dir")?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if out.max_staleness > 0 && !out.pipeline {
        return Err("--max-staleness requires --pipeline".into());
    }
    if out.snapshot_every.is_some() != out.snapshot_dir.is_some() {
        return Err("--snapshot-every and --snapshot-dir must be given together".into());
    }
    if out.snapshot_every == Some(0) {
        return Err("--snapshot-every must be positive".into());
    }
    if out.snapshot_every.is_some() && out.policy == CliPolicy::Mrsch {
        return Err(
            "--snapshot-every checkpoints the simulator, not a learning agent; \
             use it with fcfs|sjf|ljf|ga"
                .into(),
        );
    }
    if out.swf.is_empty() {
        return Err("--swf <file> is required".into());
    }
    if out.window == 0 {
        return Err("--window must be positive".into());
    }
    if out.workers == 0 {
        return Err("--workers must be positive".into());
    }
    if let Some(c) = &out.curriculum {
        if !["clean", "harden"].contains(&c.as_str()) {
            return Err(format!("unknown curriculum '{c}' (expected clean|harden)"));
        }
    }
    for (flag, v) in [
        ("--cancel-frac", out.cancel_frac),
        ("--overrun-frac", out.overrun_frac),
        ("--drain-frac", out.drain_frac),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{flag} must be in [0, 1]"));
        }
    }
    if out.overrun_factor <= 1.0 {
        return Err("--overrun-factor must exceed 1".into());
    }
    find_spec(&out.workload)?;
    Ok(out)
}

/// Resolve a workload name to its spec.
pub fn find_spec(name: &str) -> Result<WorkloadSpec, String> {
    let mut all = WorkloadSpec::two_resource_suite();
    all.extend(WorkloadSpec::three_resource_suite());
    all.into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown workload '{name}' (expected S1..S10)"))
}

/// Build the evaluation disruption set for a parsed invocation: the
/// (possibly overrun-modified) jobs, the events to inject, and any
/// wait-time-aware relative cancels (faithful SWF replay).
fn disruptions_for(
    args: &CliArgs,
    jobs: Vec<Job>,
    system: &SystemConfig,
    trace: &[TraceJob],
) -> (Vec<Job>, Vec<InjectedEvent>, Vec<(usize, SimTime)>) {
    if !args.disruptions_enabled() {
        return (jobs, Vec::new(), Vec::new());
    }
    let mut drains = Vec::new();
    if args.drain_frac > 0.0 {
        drains.push(DrainSpec {
            resource: 0,
            fraction: args.drain_frac,
            at: args.drain_start,
            duration: args.drain_duration,
        });
    }
    let cfg = DisruptionConfig {
        cancel_fraction: args.cancel_frac,
        overrun_fraction: args.overrun_frac,
        overrun_factor: args.overrun_factor,
        drains,
    };
    let mut disrupted = cfg.synthesize(&jobs, system, args.seed ^ 0x5eed);
    let mut relative = Vec::new();
    if args.replay_swf_cancels_faithful {
        relative = swf_relative_cancels(&disrupted.jobs, trace);
    } else if args.replay_swf_cancels {
        disrupted.events.extend(swf_cancel_events(&disrupted.jobs, trace));
    }
    (disrupted.jobs, disrupted.events, relative)
}

/// The disruption-hardening curriculum a `--curriculum harden` run
/// trains on: the CLI's own disruption knobs define the disrupted
/// phases (falling back to a representative default when a knob is
/// unset), layered on the training slice of the trace.
fn cli_curriculum(args: &CliArgs, train_trace: &[TraceJob], spec: &WorkloadSpec) -> Curriculum {
    let clean = Scenario::new(
        "clean",
        JobSource::Trace(train_trace.to_vec()),
        spec.clone(),
        SimParams {
            enforce_walltime: args.enforce_walltime,
            tick: args.tick,
            ..SimParams::new(args.window, true)
        },
    )
    .with_seed(args.seed ^ 0xc0a1);
    if args.curriculum.as_deref() == Some("clean") {
        return Curriculum::new().phase(CurriculumPhase::new(clean, args.train_episodes.max(1)));
    }
    let cancel_heavy = DisruptionConfig {
        cancel_fraction: if args.cancel_frac > 0.0 { args.cancel_frac } else { 0.2 },
        overrun_fraction: if args.overrun_frac > 0.0 { args.overrun_frac } else { 0.1 },
        overrun_factor: args.overrun_factor,
        drains: Vec::new(),
    };
    let last_submit = train_trace.iter().map(|t| t.submit).max().unwrap_or(0);
    let drain_heavy = DisruptionConfig {
        drains: vec![DrainSpec {
            resource: 0,
            fraction: if args.drain_frac > 0.0 { args.drain_frac } else { 0.25 },
            at: if args.drain_start > 0 { args.drain_start } else { last_submit / 3 },
            duration: if args.drain_duration > 0 { args.drain_duration } else { 3600 },
        }],
        ..DisruptionConfig::default()
    };
    Curriculum::disruption_hardening(
        clean,
        cancel_heavy,
        drain_heavy,
        args.train_episodes.max(1),
    )
}

/// Run a parsed invocation over an already-loaded trace, returning the
/// simulator report (separated from I/O for testability).
pub fn run_on_trace(args: &CliArgs, trace: &[TraceJob]) -> Result<SimReport, String> {
    let spec = find_spec(&args.workload)?;
    let base = SystemConfig::two_resource(args.nodes, args.bb);
    let system = spec.system_for(&base);
    let jobs = spec.build(trace, &system, args.seed);
    let (jobs, events, relative_cancels) = disruptions_for(args, jobs, &system, trace);
    let params = SimParams {
        enforce_walltime: args.enforce_walltime,
        tick: args.tick,
        ..SimParams::new(args.window, true)
    };
    let run_baseline = |policy: &mut dyn Policy| -> Result<SimReport, String> {
        let mut sim =
            Simulator::new(system.clone(), jobs.clone(), params).map_err(|e| e.to_string())?;
        sim.inject_all(&events).map_err(|e| e.to_string())?;
        for &(id, delay) in &relative_cancels {
            sim.schedule_cancel_after_start(id, delay).map_err(|e| e.to_string())?;
        }
        let (Some(every), Some(dir)) = (args.snapshot_every, &args.snapshot_dir) else {
            return Ok(sim.run(policy));
        };
        // Checkpointed run: step batch-by-batch, rewriting the single-
        // shard snapshot every `every` batches (resume with
        // `mrsch_cli resume --from DIR/shard-0000.snap`).
        let dir = std::path::Path::new(dir);
        let mut batches = 0u64;
        while sim.step(policy) {
            batches += 1;
            if batches % every == 0 {
                mrsim::write_shard_snapshot(dir, 0, &sim)
                    .map_err(|e| format!("--snapshot-dir {}: {e}", dir.display()))?;
            }
        }
        let report = sim.final_report();
        policy.episode_end(&report);
        Ok(report)
    };
    let report = match args.policy {
        CliPolicy::Fcfs => run_baseline(&mut FcfsPolicy::default())?,
        CliPolicy::Sjf => run_baseline(&mut ListPolicy::new(ListOrder::ShortestFirst))?,
        CliPolicy::Ljf => run_baseline(&mut ListPolicy::new(ListOrder::LongestFirst))?,
        CliPolicy::Ga => run_baseline(&mut GaPolicy::with_seed(args.seed))?,
        CliPolicy::Mrsch => {
            let mut trainer = TrainerConfig::default().workers(args.workers);
            if args.pipeline {
                trainer = trainer.pipeline(if args.max_staleness > 0 {
                    PipelineConfig::bounded_staleness(args.max_staleness)
                } else {
                    PipelineConfig::lockstep()
                });
            }
            let mut agent = MrschBuilder::new(system.clone(), params)
                .seed(args.seed)
                .trainer(trainer)
                .build();
            if let Some(path) = &args.model_in {
                let data = std::fs::read(path).map_err(|e| format!("--load: {e}"))?;
                agent
                    .agent_mut()
                    .network_mut()
                    .load_checkpoint(&data)
                    .map_err(|e| format!("--load: {e}"))?;
            } else {
                // Train on the first 60% of the trace, evaluate on all of it.
                let cut = trace.len() * 3 / 5;
                let train_spec = find_spec(&args.workload)?;
                if args.curriculum.is_some() {
                    let curriculum =
                        cli_curriculum(args, &trace[..cut.max(1)], &train_spec);
                    agent.train_with_curriculum(&curriculum);
                } else {
                    let train_jobs = train_spec.build(
                        &trace[..cut.max(1)],
                        agent.system(),
                        args.seed + 1,
                    );
                    for _ in 0..args.train_episodes {
                        agent.train_episode(&train_jobs);
                    }
                }
            }
            if let Some(path) = &args.model_out {
                let ckpt = agent.agent_mut().network_mut().save_checkpoint();
                std::fs::write(path, &ckpt).map_err(|e| format!("--model: {e}"))?;
            }
            agent
                .evaluate_disrupted_replay(&jobs, &events, &relative_cancels)
                .map_err(|e| e.to_string())?
        }
    };
    Ok(report)
}

/// Full entry point: load the SWF, run, and render the report.
pub fn main_with_args(args: &[String]) -> Result<String, String> {
    let parsed = parse_args(args)?;
    let text = std::fs::read_to_string(&parsed.swf)
        .map_err(|e| format!("reading {}: {e}", parsed.swf))?;
    let trace = parse_swf(&text).map_err(|e| e.to_string())?;
    if trace.is_empty() {
        return Err("trace contains no usable jobs".into());
    }
    let report = run_on_trace(&parsed, &trace)?;
    Ok(render_report(&parsed, &report))
}

/// Render a report as the CLI's output table.
pub fn render_report(args: &CliArgs, report: &SimReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "policy={:?} workload={} jobs={} makespan={}s\n",
        args.policy, args.workload, report.jobs_completed, report.makespan
    ));
    for (name, util) in report.resource_names.iter().zip(&report.resource_utilization) {
        out.push_str(&format!("  {name:<18} utilization {}\n", csv::f(*util)));
    }
    out.push_str(&format!(
        "  avg wait {} h | max wait {} h | avg slowdown {} | backfilled {}\n",
        csv::f(report.avg_wait_hours()),
        csv::f(report.max_wait as f64 / 3600.0),
        csv::f(report.avg_slowdown),
        report.backfilled_jobs
    ));
    if report.jobs_cancelled + report.jobs_killed > 0
        || report.capacity_lost_unit_seconds.iter().any(|&l| l > 0.0)
    {
        let lost: Vec<String> = report
            .resource_names
            .iter()
            .zip(&report.capacity_lost_unit_seconds)
            .map(|(n, l)| format!("{n}={}", csv::f(*l)))
            .collect();
        out.push_str(&format!(
            "  disruptions: cancelled {} | killed {} | lost unit-seconds {}\n",
            report.jobs_cancelled,
            report.jobs_killed,
            lost.join(" ")
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// The `resume` subcommand: continue a run from a checkpoint file.
// ---------------------------------------------------------------------------

/// Parsed `resume` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct ResumeArgs {
    /// Checkpoint file (an `MRSS` frame, e.g. `DIR/shard-0000.snap`).
    pub from: String,
    /// Scheduler driving the continued run. The snapshot stores
    /// simulator state only, so stateless policies (fcfs/sjf/ljf)
    /// continue **bit-identically**; `ga` restarts its optimizer from
    /// `--seed` over the restored queue.
    pub policy: CliPolicy,
    /// RNG seed for `--policy ga`.
    pub seed: u64,
}

/// Parse `resume`-style arguments (everything after the subcommand).
pub fn parse_resume_args(args: &[String]) -> Result<ResumeArgs, String> {
    let mut out = ResumeArgs { from: String::new(), policy: CliPolicy::Fcfs, seed: 1 };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--from" => out.from = value("--from")?,
            "--policy" => {
                out.policy = match value("--policy")?.as_str() {
                    "fcfs" => CliPolicy::Fcfs,
                    "sjf" => CliPolicy::Sjf,
                    "ljf" => CliPolicy::Ljf,
                    "ga" => CliPolicy::Ga,
                    "mrsch" => {
                        return Err(
                            "resume does not support mrsch (agent weights are not part of \
                             a simulator snapshot); use fcfs|sjf|ljf|ga"
                                .into(),
                        )
                    }
                    other => return Err(format!("unknown policy '{other}'")),
                }
            }
            "--seed" => {
                out.seed = value("--seed")?.parse().map_err(|_| "--seed: not a number")?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if out.from.is_empty() {
        return Err("--from <snapshot file> is required".into());
    }
    Ok(out)
}

/// Restore the checkpoint and run it to completion.
pub fn resume_run(args: &ResumeArgs) -> Result<SimReport, String> {
    let bytes =
        std::fs::read(&args.from).map_err(|e| format!("reading {}: {e}", args.from))?;
    let mut sim: Simulator =
        Simulator::restore(&bytes).map_err(|e| format!("{}: {e}", args.from))?;
    let mut policy: Box<dyn Policy> = match args.policy {
        CliPolicy::Fcfs => Box::new(FcfsPolicy::default()),
        CliPolicy::Sjf => Box::new(ListPolicy::new(ListOrder::ShortestFirst)),
        CliPolicy::Ljf => Box::new(ListPolicy::new(ListOrder::LongestFirst)),
        CliPolicy::Ga => Box::new(GaPolicy::with_seed(args.seed)),
        CliPolicy::Mrsch => unreachable!("rejected during parsing"),
    };
    Ok(sim.run(policy.as_mut()))
}

/// Full `resume` entry point: restore, finish the run, render.
pub fn resume_main(args: &[String]) -> Result<String, String> {
    let parsed = parse_resume_args(args)?;
    let report = resume_run(&parsed)?;
    let mut out = format!(
        "resumed {} policy={:?} jobs={} makespan={}s\n",
        parsed.from, parsed.policy, report.jobs_completed, report.makespan
    );
    for (name, util) in report.resource_names.iter().zip(&report.resource_utilization) {
        out.push_str(&format!("  {name:<18} utilization {}\n", csv::f(*util)));
    }
    out.push_str(&format!(
        "  avg wait {} h | avg slowdown {} | cancelled {} | killed {} | unfinished {}\n",
        csv::f(report.avg_wait_hours()),
        csv::f(report.avg_slowdown),
        report.jobs_cancelled,
        report.jobs_killed,
        report.jobs_unfinished
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// The `evaluate` subcommand: registry-driven policy × scenario × seed grids.
// ---------------------------------------------------------------------------

/// Parsed `evaluate` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalCliArgs {
    /// Policies to evaluate (from [`PolicySpec::parse_list`]).
    pub policies: Vec<PolicySpec>,
    /// Scenario spec strings (comma list or `all`), raw — parsed by the
    /// scenario registry (`mrsch_eval::ScenarioSpec`).
    pub scenarios: String,
    /// Grid seeds.
    pub seeds: Vec<u64>,
    /// Workload spec name ("S1"…"S10").
    pub workload: String,
    /// Machine nodes.
    pub nodes: u64,
    /// Burst-buffer units.
    pub bb: u64,
    /// Window size.
    pub window: usize,
    /// Synthetic trace length (ignored with `--swf`).
    pub jobs: usize,
    /// Scenario-level seed (job synthesis / disruption placement).
    pub seed: u64,
    /// Training episodes for learnable policies.
    pub train_episodes: usize,
    /// Rollout worker threads for MRSch training.
    pub workers: usize,
    /// Optional SWF trace as the shared job source.
    pub swf: Option<String>,
    /// Optional path for the per-cell grid CSV.
    pub csv_out: Option<String>,
    /// Directory of the content-addressed trained-policy cache.
    pub policy_cache: Option<String>,
    /// Fail unless every learnable cell was served from the cache.
    pub require_warm_cache: bool,
}

/// Parse `evaluate`-style arguments (everything after the subcommand).
pub fn parse_eval_args(args: &[String]) -> Result<EvalCliArgs, String> {
    let mut out = EvalCliArgs {
        policies: vec![PolicySpec::Fcfs],
        scenarios: "clean".into(),
        seeds: vec![1],
        workload: "S1".into(),
        nodes: 64,
        bb: 20,
        window: 5,
        jobs: 80,
        seed: 1,
        train_episodes: 3,
        workers: 1,
        swf: None,
        csv_out: None,
        policy_cache: None,
        require_warm_cache: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--policy" => out.policies = PolicySpec::parse_list(&value("--policy")?)?,
            "--scenario" => out.scenarios = value("--scenario")?,
            "--seeds" => out.seeds = mrsch_eval::parse_seed_spec(&value("--seeds")?)?,
            "--workload" => out.workload = value("--workload")?.to_uppercase(),
            "--nodes" => {
                out.nodes = value("--nodes")?.parse().map_err(|_| "--nodes: not a number")?
            }
            "--bb" => out.bb = value("--bb")?.parse().map_err(|_| "--bb: not a number")?,
            "--window" => {
                out.window = value("--window")?.parse().map_err(|_| "--window: not a number")?
            }
            "--jobs" => {
                out.jobs = value("--jobs")?.parse().map_err(|_| "--jobs: not a number")?
            }
            "--seed" => {
                out.seed = value("--seed")?.parse().map_err(|_| "--seed: not a number")?
            }
            "--train-episodes" => {
                out.train_episodes = value("--train-episodes")?
                    .parse()
                    .map_err(|_| "--train-episodes: not a number")?
            }
            "--workers" => {
                out.workers =
                    value("--workers")?.parse().map_err(|_| "--workers: not a number")?
            }
            "--swf" => out.swf = Some(value("--swf")?),
            "--csv" => out.csv_out = Some(value("--csv")?),
            "--policy-cache" => out.policy_cache = Some(value("--policy-cache")?),
            "--require-warm-cache" => out.require_warm_cache = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if out.require_warm_cache && out.policy_cache.is_none() {
        return Err("--require-warm-cache requires --policy-cache".into());
    }
    if out.policies.is_empty() {
        return Err("--policy needs at least one policy".into());
    }
    if out.window == 0 {
        return Err("--window must be positive".into());
    }
    if out.jobs == 0 {
        return Err("--jobs must be positive".into());
    }
    if out.workers == 0 {
        return Err("--workers must be positive".into());
    }
    find_spec(&out.workload)?;
    Ok(out)
}

/// Build the [`EvalPlan`] of a parsed `evaluate` invocation over an
/// explicit job source (separated from I/O for testability).
pub fn build_eval_plan(args: &EvalCliArgs, source: JobSource) -> Result<EvalPlan, String> {
    let spec = find_spec(&args.workload)?;
    let params = SimParams::new(args.window, true);
    let scenarios =
        mrsch_eval::build_scenarios(&args.scenarios, &source, &spec, params, args.seed)
            .map_err(|e| e.to_string())?;
    // Names are the grid's coordinates; report duplicates (easy to hit
    // through aliases like `fcfs,heuristic`) as clean CLI errors rather
    // than tripping the plan's assertion.
    reject_duplicates("--policy", args.policies.iter().map(|p| p.name()))?;
    reject_duplicates("--scenario", scenarios.iter().map(|s| s.name.clone()))?;
    reject_duplicates("--seeds", args.seeds.iter().map(|s| s.to_string()))?;
    Ok(EvalPlan::new(
        SystemConfig::two_resource(args.nodes, args.bb),
        args.policies.clone(),
        scenarios,
        args.seeds.clone(),
    )
    .train_episodes(args.train_episodes)
    .trainer(TrainerConfig::default().workers(args.workers)))
}

/// Error when a name appears more than once (after alias resolution).
fn reject_duplicates(flag: &str, names: impl Iterator<Item = String>) -> Result<(), String> {
    let mut seen = Vec::new();
    for name in names {
        if seen.contains(&name) {
            return Err(format!("{flag}: '{name}' given more than once"));
        }
        seen.push(name);
    }
    Ok(())
}

/// Full `evaluate` entry point: build the grid, run it, emit CSV.
/// Returns the seed-aggregated CSV (stdout); `--csv` additionally
/// writes the per-cell grid to disk.
pub fn evaluate_main(args: &[String]) -> Result<String, String> {
    let parsed = parse_eval_args(args)?;
    let source = match &parsed.swf {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {path}: {e}"))?;
            let trace = parse_swf(&text).map_err(|e| e.to_string())?;
            if trace.is_empty() {
                return Err("trace contains no usable jobs".into());
            }
            JobSource::Trace(trace)
        }
        None => JobSource::Theta(ThetaConfig {
            machine_nodes: parsed.nodes,
            ..ThetaConfig::scaled(parsed.jobs)
        }),
    };
    let cache = parsed
        .policy_cache
        .as_ref()
        .map(|dir| std::sync::Arc::new(mrsch_eval::PolicyCache::new(dir)));
    let mut plan = build_eval_plan(&parsed, source)?;
    if let Some(c) = &cache {
        plan = plan.policy_cache(c.clone());
    }
    let grid = plan.run();
    if let Some(c) = &cache {
        eprintln!(
            "policy cache: {} hit(s), {} retrain(s), {} stored ({})",
            c.hits(),
            c.misses(),
            c.stores(),
            c.dir().display()
        );
        if parsed.require_warm_cache && c.misses() > 0 {
            return Err(format!(
                "--require-warm-cache: {} cell(s) retrained instead of hitting the cache",
                c.misses()
            ));
        }
    }
    if let Some(path) = &parsed.csv_out {
        let (header, rows) = grid.cell_csv();
        csv::write_csv_to(path, &header, &rows).map_err(|e| format!("--csv {path}: {e}"))?;
        eprintln!("wrote per-cell grid ({} cells) to {path}", grid.cells.len());
    }
    let (header, rows) = grid.aggregate_csv();
    Ok(csv::to_csv(&header, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsch_workload::theta::{SwfStatus, ThetaConfig};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--workload", "s4", "--nodes", "64", "--bb", "20",
            "--policy", "mrsch", "--window", "5", "--seed", "9",
            "--train-episodes", "2", "--model", "out.ckpt",
        ]))
        .unwrap();
        assert_eq!(a.workload, "S4");
        assert_eq!(a.nodes, 64);
        assert_eq!(a.policy, CliPolicy::Mrsch);
        assert_eq!(a.window, 5);
        assert_eq!(a.model_out.as_deref(), Some("out.ckpt"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["--workload", "S1"])).is_err(), "missing swf");
        assert!(parse_args(&args(&["--swf", "t", "--policy", "bogus"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--workload", "S99"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--nodes"])).is_err(), "dangling flag");
        assert!(parse_args(&args(&["--swf", "t", "--frobnicate", "1"])).is_err());
    }

    #[test]
    fn runs_every_policy_on_a_synthetic_trace() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(40) }.generate(3);
        for policy in ["fcfs", "sjf", "ljf", "ga"] {
            let a = parse_args(&args(&[
                "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
                "--policy", policy, "--window", "4",
            ]))
            .unwrap();
            let report = run_on_trace(&a, &trace).unwrap();
            assert_eq!(report.jobs_completed, 40, "{policy}");
        }
    }

    #[test]
    fn mrsch_policy_trains_and_checkpoints() {
        let dir = std::env::temp_dir().join("mrsch_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.ckpt");
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(40) }.generate(4);
        let a = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S2", "--nodes", "16", "--bb", "8",
            "--policy", "mrsch", "--window", "4", "--train-episodes", "1",
            "--model", model.to_str().unwrap(),
        ]))
        .unwrap();
        let r1 = run_on_trace(&a, &trace).unwrap();
        assert_eq!(r1.jobs_completed, 40);
        assert!(model.exists(), "checkpoint written");
        // Reload: must reproduce the identical schedule.
        let b = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S2", "--nodes", "16", "--bb", "8",
            "--policy", "mrsch", "--window", "4",
            "--load", model.to_str().unwrap(),
        ]))
        .unwrap();
        let r2 = run_on_trace(&b, &trace).unwrap();
        assert_eq!(r1.records, r2.records, "checkpoint roundtrip via CLI");
    }

    #[test]
    fn parses_disruption_flags() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--cancel-frac", "0.1", "--overrun-frac", "0.05",
            "--overrun-factor", "2.0", "--drain-frac", "0.25", "--drain-start", "5000",
            "--drain-duration", "3000", "--tick", "600",
        ]))
        .unwrap();
        assert_eq!(a.cancel_frac, 0.1);
        assert_eq!(a.overrun_frac, 0.05);
        assert!(a.enforce_walltime, "--overrun-frac implies walltime enforcement");
        assert_eq!(a.drain_frac, 0.25);
        assert_eq!(a.tick, Some(600));
        assert!(a.disruptions_enabled());
        assert!(parse_args(&args(&["--swf", "t", "--cancel-frac", "1.5"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--overrun-factor", "0.5"])).is_err());
    }

    #[test]
    fn disrupted_run_accounts_for_every_job() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(60) }.generate(6);
        let a = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
            "--policy", "fcfs", "--window", "4", "--cancel-frac", "0.15",
            "--overrun-frac", "0.15", "--drain-frac", "0.25",
            "--drain-start", "2000", "--drain-duration", "4000",
        ]))
        .unwrap();
        let report = run_on_trace(&a, &trace).unwrap();
        assert!(report.all_jobs_accounted(60), "finished+cancelled+killed == trace");
        assert!(report.jobs_cancelled > 0);
        assert!(report.jobs_killed > 0);
        assert!(report.capacity_lost_unit_seconds[0] > 0.0);
        let text = render_report(&a, &report);
        assert!(text.contains("disruptions:"), "render shows the disruption line");
    }

    #[test]
    fn parses_curriculum_and_worker_flags() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--curriculum", "HARDEN", "--workers", "4",
            "--replay-swf-cancels-faithful",
        ]))
        .unwrap();
        assert_eq!(a.curriculum.as_deref(), Some("harden"));
        assert_eq!(a.workers, 4);
        assert!(a.replay_swf_cancels_faithful);
        assert!(a.disruptions_enabled());
        assert!(parse_args(&args(&["--swf", "t", "--curriculum", "bogus"])).is_err());
        assert!(parse_args(&args(&["--swf", "t", "--workers", "0"])).is_err());
    }

    #[test]
    #[ignore = "experiment-scale (trains two curriculum agents); run with --ignored / in CI"]
    fn curriculum_training_runs_and_is_worker_invariant() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(40) }.generate(8);
        let run = |workers: &str| {
            let a = parse_args(&args(&[
                "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
                "--policy", "mrsch", "--window", "4", "--train-episodes", "1",
                "--curriculum", "harden", "--workers", workers,
            ]))
            .unwrap();
            run_on_trace(&a, &trace).unwrap()
        };
        let serial = run("1");
        let parallel = run("2");
        assert_eq!(serial.jobs_completed, 40);
        assert_eq!(serial.records, parallel.records, "worker count is wall-clock only");
    }

    #[test]
    fn faithful_swf_replay_cancels_at_simulated_start() {
        // A trace whose cancelled job waits: under the faithful replay
        // its end is start + recorded lifetime, not submit + lifetime.
        let mut trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(30) }.generate(9);
        for t in trace.iter_mut().take(10) {
            t.status = SwfStatus::Cancelled;
        }
        let a = parse_args(&args(&[
            "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
            "--policy", "fcfs", "--window", "4", "--replay-swf-cancels-faithful",
        ]))
        .unwrap();
        let report = run_on_trace(&a, &trace).unwrap();
        // Started-then-cancelled jobs end exactly at start + recorded runtime.
        let cancelled: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Cancelled)
            .collect();
        assert!(!cancelled.is_empty(), "some replayed cancels landed");
        for r in &cancelled {
            assert_eq!(r.end, r.start + trace[r.id].runtime);
        }
        assert!(report.all_jobs_accounted(30));
    }

    #[test]
    fn parses_pipeline_flags() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--workers", "4", "--pipeline", "--max-staleness", "2",
        ]))
        .unwrap();
        assert!(a.pipeline);
        assert_eq!(a.max_staleness, 2);
        let lockstep = parse_args(&args(&["--swf", "t.swf", "--pipeline"])).unwrap();
        assert!(lockstep.pipeline);
        assert_eq!(lockstep.max_staleness, 0, "--pipeline alone is lockstep");
        let err = parse_args(&args(&["--swf", "t.swf", "--max-staleness", "2"])).unwrap_err();
        assert!(err.contains("--pipeline"), "{err}");
    }

    #[test]
    fn pipelined_cli_run_is_bit_identical_to_barrier() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(24) }.generate(7);
        let run = |extra: &[&str]| {
            let mut v = vec![
                "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
                "--policy", "mrsch", "--window", "4", "--train-episodes", "1",
                "--curriculum", "clean", "--workers", "2",
            ];
            v.extend_from_slice(extra);
            run_on_trace(&parse_args(&args(&v)).unwrap(), &trace).unwrap()
        };
        let barrier = run(&[]);
        let pipelined = run(&["--pipeline"]);
        assert_eq!(barrier.records, pipelined.records, "lockstep pipeline is a pure wall-clock knob");
    }

    #[test]
    fn parses_snapshot_flags() {
        let a = parse_args(&args(&[
            "--swf", "t.swf", "--snapshot-every", "100", "--snapshot-dir", "snaps",
        ]))
        .unwrap();
        assert_eq!(a.snapshot_every, Some(100));
        assert_eq!(a.snapshot_dir.as_deref(), Some("snaps"));
        assert!(
            parse_args(&args(&["--swf", "t", "--snapshot-every", "10"])).is_err(),
            "--snapshot-dir required"
        );
        assert!(
            parse_args(&args(&["--swf", "t", "--snapshot-dir", "d"])).is_err(),
            "--snapshot-every required"
        );
        assert!(parse_args(&args(&[
            "--swf", "t", "--snapshot-every", "0", "--snapshot-dir", "d",
        ]))
        .is_err());
        assert!(
            parse_args(&args(&[
                "--swf", "t", "--policy", "mrsch", "--snapshot-every", "5",
                "--snapshot-dir", "d",
            ]))
            .is_err(),
            "simulator snapshots do not capture agent weights"
        );
    }

    #[test]
    fn parses_resume_args() {
        let a = parse_resume_args(&args(&["--from", "d/shard-0000.snap", "--policy", "sjf"]))
            .unwrap();
        assert_eq!(a.from, "d/shard-0000.snap");
        assert_eq!(a.policy, CliPolicy::Sjf);
        assert!(parse_resume_args(&args(&[])).is_err(), "--from required");
        let err =
            parse_resume_args(&args(&["--from", "x", "--policy", "mrsch"])).unwrap_err();
        assert!(err.contains("mrsch"), "{err}");
    }

    #[test]
    fn resume_continues_a_checkpointed_cli_run_bit_identically() {
        let dir = std::env::temp_dir()
            .join(format!("mrsch_cli_snapshots_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(60) }.generate(11);
        let base = vec![
            "--swf", "unused.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
            "--policy", "fcfs", "--window", "4", "--cancel-frac", "0.1",
            "--overrun-frac", "0.1", "--drain-frac", "0.25", "--drain-start", "2000",
            "--drain-duration", "4000",
        ];
        let reference = run_on_trace(&parse_args(&args(&base)).unwrap(), &trace).unwrap();
        let mut snapped_args = base.clone();
        let dir_str = dir.to_str().unwrap();
        snapped_args.extend_from_slice(&["--snapshot-every", "7", "--snapshot-dir", dir_str]);
        let snapped =
            run_on_trace(&parse_args(&args(&snapped_args)).unwrap(), &trace).unwrap();
        assert_eq!(snapped, reference, "checkpointing must not perturb the run");
        let snap = dir.join(mrsim::shard_snapshot_name(0));
        assert!(snap.exists(), "periodic snapshot written");
        let resumed = resume_run(&ResumeArgs {
            from: snap.to_str().unwrap().into(),
            policy: CliPolicy::Fcfs,
            seed: 1,
        })
        .unwrap();
        assert_eq!(resumed, reference, "resume finishes the interrupted run bit-identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_evaluate_args() {
        let a = parse_eval_args(&args(&[
            "--policy", "fcfs,mrsch", "--scenario", "clean,drain", "--seeds", "0..4",
            "--nodes", "16", "--bb", "8", "--window", "4", "--jobs", "30",
            "--train-episodes", "2", "--workers", "2", "--csv", "grid.csv",
        ]))
        .unwrap();
        assert_eq!(a.policies.len(), 2);
        assert_eq!(a.policies[1].name(), "mrsch");
        assert_eq!(a.seeds, vec![0, 1, 2, 3]);
        assert_eq!(a.csv_out.as_deref(), Some("grid.csv"));
        assert!(parse_eval_args(&args(&["--policy", "bogus"])).is_err());
        assert!(parse_eval_args(&args(&["--seeds", "9..3"])).is_err());
        assert!(parse_eval_args(&args(&["--frobnicate", "1"])).is_err());
    }

    #[test]
    fn evaluate_rejects_alias_duplicates_cleanly() {
        // `fcfs` and `heuristic` are the same registry entry; the CLI
        // must return an error, not trip the plan's internal assertion.
        let source =
            JobSource::Theta(ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(10) });
        let dup_policy =
            parse_eval_args(&args(&["--policy", "fcfs,heuristic"])).unwrap();
        let err = build_eval_plan(&dup_policy, source.clone()).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let dup_scenario = parse_eval_args(&args(&["--scenario", "clean,clean"])).unwrap();
        let err = build_eval_plan(&dup_scenario, source.clone()).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        // Duplicate seeds would silently double-count a replication.
        let dup_seed = parse_eval_args(&args(&["--seeds", "3,3"])).unwrap();
        let err = build_eval_plan(&dup_seed, source).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn evaluate_accepts_registry_scenario_specs() {
        let source =
            JobSource::Theta(ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(12) });
        let a = parse_eval_args(&args(&[
            "--policy", "fcfs", "--scenario", "dag:chain:3,bursty:spike,energy:drain",
            "--seeds", "1", "--nodes", "16", "--bb", "8", "--jobs", "12",
        ]))
        .unwrap();
        let plan = build_eval_plan(&a, source.clone()).unwrap();
        let names: Vec<&str> = plan.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["dag:chain:3", "bursty:spike:6", "energy:drain"]);
        // Unknown specs fail with the registry listing, so --scenario
        // errors double as discovery.
        let bad = parse_eval_args(&args(&["--scenario", "dag:fanout:x"])).unwrap();
        let err = build_eval_plan(&bad, source).unwrap_err();
        assert!(err.contains("bad parameter"), "{err}");
    }

    #[test]
    fn evaluate_plan_covers_the_full_grid() {
        let a = parse_eval_args(&args(&[
            "--policy", "fcfs,list:lpt,ga", "--scenario", "clean,drain", "--seeds", "0..2",
            "--nodes", "16", "--bb", "8", "--window", "4", "--jobs", "20",
        ]))
        .unwrap();
        let source = JobSource::Theta(ThetaConfig {
            machine_nodes: 16,
            ..ThetaConfig::scaled(20)
        });
        let plan = build_eval_plan(&a, source).unwrap();
        assert_eq!(plan.cell_count(), 3 * 2 * 2);
        let grid = plan.run();
        assert_eq!(grid.cells.len(), 12, "every cell of the grid ran");
        let (header, rows) = grid.cell_csv();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].len(), header.len());
        // The drain scenario actually drained capacity for some cell.
        assert!(grid
            .cells
            .iter()
            .filter(|c| c.scenario == "drain")
            .any(|c| c.report.capacity_lost_unit_seconds[0] > 0.0));
        let agg = grid.aggregate_csv();
        assert_eq!(agg.1.len(), 3 * 2, "one aggregate row per (policy, scenario)");
        assert!(agg.1.iter().all(|r| r[2] == "2"), "each aggregates two seeds");
    }

    #[test]
    fn parses_policy_cache_flags() {
        let a = parse_eval_args(&args(&[
            "--policy", "mrsch", "--policy-cache", "cache_dir", "--require-warm-cache",
        ]))
        .unwrap();
        assert_eq!(a.policy_cache.as_deref(), Some("cache_dir"));
        assert!(a.require_warm_cache);
        let err = parse_eval_args(&args(&["--require-warm-cache"])).unwrap_err();
        assert!(err.contains("--policy-cache"), "{err}");
    }

    #[test]
    fn evaluate_policy_cache_warms_across_runs() {
        let dir = std::env::temp_dir()
            .join(format!("mrsch_cli_policy_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = [
            "--policy", "mrsch", "--scenario", "clean", "--seeds", "1",
            "--nodes", "16", "--bb", "8", "--window", "4", "--jobs", "20",
            "--train-episodes", "1", "--policy-cache", dir.to_str().unwrap(),
        ];
        let cold = evaluate_main(&args(&base)).unwrap();
        // Second run must be served entirely from the cache (zero
        // retrains — enforced by --require-warm-cache) and reproduce the
        // cold run's aggregate CSV byte for byte.
        let mut warm_args = base.to_vec();
        warm_args.push("--require-warm-cache");
        let warm = evaluate_main(&args(&warm_args)).unwrap();
        assert_eq!(cold, warm, "cache hit replays the trained policy exactly");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_includes_all_metrics() {
        let trace = ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(20) }.generate(5);
        let a = parse_args(&args(&[
            "--swf", "x.swf", "--workload", "S1", "--nodes", "16", "--bb", "8",
        ]))
        .unwrap();
        let report = run_on_trace(&a, &trace).unwrap();
        let text = render_report(&a, &report);
        assert!(text.contains("utilization"));
        assert!(text.contains("avg wait"));
        assert!(text.contains("workload=S1"));
    }
}
