//! Multi-seed replication: run the method comparison across several
//! seeds and report mean ± standard deviation per method and metric.
//!
//! Single-seed RL comparisons are noisy; the paper reports single runs,
//! but a reproduction should quantify run-to-run spread. Each seed
//! re-synthesizes the trace, re-trains the learning methods, and
//! re-evaluates — so the spread includes workload, initialization and
//! exploration variance. The per-seed grids come from the shared
//! evaluation harness (`comparison::run_workload_grid`) and the
//! aggregation is the harness's own [`EvalGrid::aggregate`] — this
//! module holds no policy plumbing of its own.

use crate::comparison::{run_workload_grid, MethodName};
use crate::csv;
use crate::scale::ExpScale;
use mrsch_eval::{Aggregate, EvalGrid};
use mrsch_workload::suite::WorkloadSpec;

/// Aggregated results for one method on one workload.
#[derive(Clone, Debug)]
pub struct MultiSeedRow {
    /// The scheduler.
    pub method: MethodName,
    /// Workload name.
    pub workload: String,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Node utilization.
    pub node_util: Aggregate,
    /// Burst-buffer utilization.
    pub bb_util: Aggregate,
    /// Average wait, hours.
    pub avg_wait_h: Aggregate,
    /// Average slowdown.
    pub avg_slowdown: Aggregate,
}

/// Run one workload across `seeds` (one scoped thread per seed — each
/// seed re-synthesizes its trace, so the seeds are separate plans),
/// merge the grids, and aggregate per method.
pub fn run_workload_multi_seed(
    spec: &WorkloadSpec,
    scale: &ExpScale,
    seeds: &[u64],
) -> Vec<MultiSeedRow> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut per_seed: Vec<Option<EvalGrid>> = (0..seeds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            handles.push((i, scope.spawn(move || run_workload_grid(spec, scale, seed))));
        }
        for (i, h) in handles {
            per_seed[i] = Some(h.join().expect("seed thread panicked"));
        }
    });
    let grid = EvalGrid::merge(per_seed.into_iter().flatten());

    MethodName::all()
        .into_iter()
        .map(|method| {
            let agg = grid
                .aggregate(&method.spec().name(), &spec.name)
                .expect("method present in every run");
            MultiSeedRow {
                method,
                workload: spec.name.clone(),
                seeds: agg.seeds,
                node_util: agg.node_util,
                bb_util: agg.bb_util,
                avg_wait_h: agg.avg_wait_h,
                avg_slowdown: agg.avg_slowdown,
            }
        })
        .collect()
}

/// Print the aggregate table.
pub fn print(rows: &[MultiSeedRow]) {
    println!(
        "multi-seed comparison ({} seeds) — mean ± std",
        rows.first().map(|r| r.seeds).unwrap_or(0)
    );
    println!(
        "{:<4} {:<14} {:>18} {:>18} {:>18} {:>18}",
        "wl", "method", "node util", "bb util", "wait (h)", "slowdown"
    );
    for r in rows {
        let fmt = |a: &Aggregate| format!("{:.3} ± {:.3}", a.mean, a.std);
        println!(
            "{:<4} {:<14} {:>18} {:>18} {:>18} {:>18}",
            r.workload,
            r.method.label(),
            fmt(&r.node_util),
            fmt(&r.bb_util),
            fmt(&r.avg_wait_h),
            fmt(&r.avg_slowdown)
        );
    }
}

/// CSV rows.
pub fn csv_rows(rows: &[MultiSeedRow]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "workload",
        "method",
        "seeds",
        "node_util_mean",
        "node_util_std",
        "bb_util_mean",
        "bb_util_std",
        "avg_wait_h_mean",
        "avg_wait_h_std",
        "avg_slowdown_mean",
        "avg_slowdown_std",
    ];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.method.label().to_string(),
                r.seeds.to_string(),
                csv::f(r.node_util.mean),
                csv::f(r.node_util.std),
                csv::f(r.bb_util.mean),
                csv::f(r.bb_util.std),
                csv::f(r.avg_wait_h.mean),
                csv::f(r.avg_wait_h.std),
                csv::f(r.avg_slowdown.mean),
                csv::f(r.avg_slowdown.std),
            ]
        })
        .collect();
    (header, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_two_seeds() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 20;
        scale.jobs_per_set = 12;
        scale.batches_per_episode = 2;
        let rows = run_workload_multi_seed(&WorkloadSpec::s1(), &scale, &[1, 2]);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.seeds, 2);
            assert!(r.node_util.mean > 0.0);
            assert!(r.node_util.std >= 0.0);
            assert!(r.avg_slowdown.mean >= 1.0);
        }
    }

    #[test]
    fn deterministic_methods_have_zero_variance_under_same_seed() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 15;
        scale.jobs_per_set = 10;
        scale.batches_per_episode = 2;
        // Same seed twice: every method (including trained ones, which are
        // seeded) must produce identical metrics -> std == 0.
        let rows = run_workload_multi_seed(&WorkloadSpec::s1(), &scale, &[7, 7]);
        for r in rows {
            assert!(
                r.avg_wait_h.std.abs() < 1e-12,
                "{:?} not deterministic: std {}",
                r.method,
                r.avg_wait_h.std
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        let scale = ExpScale::quick();
        let _ = run_workload_multi_seed(&WorkloadSpec::s1(), &scale, &[]);
    }
}
