//! Experiment harness: one module per table/figure of the MRSch paper.
//!
//! Every module exposes a `run(scale, seed)` function returning plain data
//! structures plus a `print_*` helper that emits the same rows/series the
//! paper plots. Each figure also has a binary target (`cargo run -p
//! mrsch-experiments --release --bin figN`) and a Criterion bench in
//! `crates/bench`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — motivating example (fixed weights vs ideal order) |
//! | [`table3`] | Table III — workload suite definitions |
//! | [`fig3`] | Fig. 3 — MLP vs CNN state module |
//! | [`fig4`] | Fig. 4 — training-curriculum orderings |
//! | [`comparison`] (+[`fig5`], [`fig6`], [`fig7`]) | Figs. 5–7 — method comparison on S1–S5 |
//! | [`fig8`], [`fig9`] | Figs. 8–9 — dynamic goal vector `rBB` |
//! | [`fig10`] | Fig. 10 — three-resource case study S6–S10 |
//! | [`overhead`] | §V-F — decision latency |
//! | [`ablation`] | extra ablations: goal mode, starvation guards, window size |
//! | [`disruption_curriculum`] | clean-trained vs disruption-hardened MRSch on a disrupted trace |
//!
//! The [`scale`] module defines the experiment sizes: `quick()` for tests
//! and benches, `full()` for the standalone binaries. All runs are
//! deterministic in the provided seed.
//!
//! Policy construction and training are **not** done here: the
//! comparison drivers map the paper's experimental design onto
//! `mrsch_eval::EvalPlan`s and let the registry
//! (`mrsch_eval::PolicySpec`) build every scheduler. The CLI ([`cli`])
//! exposes the same grid as the `mrsch_cli evaluate` subcommand.

pub mod ablation;
pub mod cli;
pub mod comparison;
pub mod csv;
pub mod disruption_curriculum;
pub mod fig1;
pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod kiviat;
pub mod multi_seed;
pub mod overhead;
pub mod scale;
pub mod table3;

pub use comparison::{Comparison, MethodName};
pub use scale::ExpScale;
