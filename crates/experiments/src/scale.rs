//! Experiment sizing.
//!
//! The paper runs on the full 4392-node Theta with a five-month trace —
//! far beyond a CI budget. DESIGN.md §2 commits to proportional scaling:
//! the *relative* comparisons are the reproduction target. [`ExpScale`]
//! centralizes the sizes so every figure uses consistent systems and
//! traces.

use mrsch_workload::theta::{ThetaConfig, TraceJob};
use mrsim::resources::SystemConfig;
use mrsim::simulator::SimParams;
use serde::{Deserialize, Serialize};

/// Sizing of one experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpScale {
    /// Compute nodes of the simulated machine.
    pub nodes: u64,
    /// Burst-buffer units of the simulated machine.
    pub burst_buffer: u64,
    /// Scheduling-window size `W`.
    pub window: usize,
    /// Jobs in the base trace (split into train/val/test).
    pub trace_jobs: usize,
    /// Jobs per evaluation run.
    pub eval_jobs: usize,
    /// Job sets per curriculum phase.
    pub sets_per_phase: usize,
    /// Jobs per training job set.
    pub jobs_per_set: usize,
    /// Gradient steps after each training episode.
    pub batches_per_episode: usize,
    /// Extra training passes over the curriculum (epochs).
    pub train_rounds: usize,
}

impl ExpScale {
    /// Small scale for unit tests and Criterion benches (seconds).
    ///
    /// Sized for a warm `cargo test -q` under the ROADMAP's ~45 s
    /// budget on a single core: the machine (48×16) keeps the DFP state
    /// vector — and with it every gradient step — small, and the
    /// train/eval job counts are the smallest that keep the figure
    /// tests' qualitative orderings stable.
    pub fn quick() -> Self {
        Self {
            nodes: 48,
            burst_buffer: 16,
            window: 4,
            trace_jobs: 240,
            eval_jobs: 48,
            sets_per_phase: 1,
            jobs_per_set: 30,
            batches_per_episode: 6,
            train_rounds: 1,
        }
    }

    /// Full scale for the standalone figure binaries (minutes).
    pub fn full() -> Self {
        Self {
            nodes: 256,
            burst_buffer: 75,
            window: 10,
            trace_jobs: 3000,
            eval_jobs: 400,
            sets_per_phase: 2,
            jobs_per_set: 150,
            batches_per_episode: 64,
            train_rounds: 6,
        }
    }

    /// The two-resource base system at this scale.
    pub fn base_system(&self) -> SystemConfig {
        SystemConfig::two_resource(self.nodes, self.burst_buffer)
    }

    /// Simulator parameters at this scale.
    pub fn sim_params(&self) -> SimParams {
        SimParams::new(self.window, true)
    }

    /// Theta-like trace generator matched to this machine size.
    pub fn trace_config(&self) -> ThetaConfig {
        ThetaConfig {
            machine_nodes: self.nodes,
            num_jobs: self.trace_jobs,
            ..ThetaConfig::scaled(self.trace_jobs)
        }
    }

    /// Generate the base trace for this scale.
    pub fn base_trace(&self, seed: u64) -> Vec<TraceJob> {
        self.trace_config().generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExpScale::quick();
        let f = ExpScale::full();
        assert!(q.nodes < f.nodes);
        assert!(q.trace_jobs < f.trace_jobs);
        assert!(q.eval_jobs < f.eval_jobs);
    }

    #[test]
    fn derived_objects_consistent() {
        let s = ExpScale::quick();
        assert_eq!(s.base_system().capacities(), vec![48, 16]);
        assert_eq!(s.sim_params().window, 4);
        assert_eq!(s.trace_config().machine_nodes, 48);
        assert_eq!(s.base_trace(1).len(), s.trace_jobs);
    }

    #[test]
    fn trace_is_deterministic() {
        let s = ExpScale::quick();
        assert_eq!(s.base_trace(5), s.base_trace(5));
    }
}
