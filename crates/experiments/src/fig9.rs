//! Fig. 9 — box plot of `rBB` across S1–S5.
//!
//! The paper's two observations: (1) `rBB` varies dynamically (unlike the
//! scalar-RL fixed 0.5), and (2) every box statistic is largest for S5
//! (the most BB-contended workload).

use crate::comparison::train_mrsch;
use crate::csv;
use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_linalg::stats::{box_summary, BoxSummary};
use mrsch_workload::split::paper_split;

/// Box statistics of `rBB` for one workload.
#[derive(Clone, Debug)]
pub struct Fig9Box {
    /// Workload name.
    pub workload: String,
    /// Five-number summary + mean.
    pub summary: BoxSummary,
}

/// Evaluate a trained agent per workload and box-summarize its `rBB` log.
pub fn run(scale: &ExpScale, seed: u64) -> Vec<Fig9Box> {
    WorkloadSpec::two_resource_suite()
        .into_iter()
        .map(|spec| {
            let system = spec.system_for(&scale.base_system());
            let trace = scale.base_trace(seed);
            let split = paper_split(&trace);
            let mut test = split.test;
            test.truncate(scale.eval_jobs);
            let jobs = spec.build(&test, &system, seed ^ 0xEA1);
            let mut agent = train_mrsch(&spec, scale, seed, StateModuleKind::Mlp);
            let (_, log) = agent.evaluate_with_goal_log(&jobs);
            let values: Vec<f64> = log.iter().map(|(_, g)| g[1] as f64).collect();
            Fig9Box {
                workload: spec.name.clone(),
                summary: box_summary(&values).expect("decisions must exist"),
            }
        })
        .collect()
}

/// Print the box statistics.
pub fn print(boxes: &[Fig9Box]) {
    println!("Fig. 9 — box plot of rBB per workload");
    println!(
        "{:<4} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "wl", "min", "q1", "median", "q3", "max", "mean"
    );
    for b in boxes {
        let s = &b.summary;
        println!(
            "{:<4} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            b.workload, s.min, s.q1, s.median, s.q3, s.max, s.mean
        );
    }
}

/// CSV rows for `results/fig9.csv`.
pub fn csv_rows(boxes: &[Fig9Box]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec!["workload", "min", "q1", "median", "q3", "max", "mean"];
    let rows = boxes
        .iter()
        .map(|b| {
            vec![
                b.workload.clone(),
                csv::f(b.summary.min),
                csv::f(b.summary.q1),
                csv::f(b.summary.median),
                csv::f(b.summary.q3),
                csv::f(b.summary.max),
                csv::f(b.summary.mean),
            ]
        })
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_boxes_ordered_and_bounded() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 16;
        scale.jobs_per_set = 10;
        scale.batches_per_episode = 2;
        let boxes = run(&scale, 41);
        assert_eq!(boxes.len(), 5);
        for b in &boxes {
            let s = &b.summary;
            assert!(s.min >= 0.0 && s.max <= 1.0);
            assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        }
    }

    #[test]
    #[ignore = "experiment-scale (5 workloads); run with --ignored / in CI"]
    fn s5_mean_exceeds_s1_mean() {
        // S5 is the most BB-contended workload; its rBB should sit higher
        // than S1's (the paper's Fig. 9 observation 2).
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 50;
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        let boxes = run(&scale, 43);
        let s1 = boxes.iter().find(|b| b.workload == "S1").unwrap();
        let s5 = boxes.iter().find(|b| b.workload == "S5").unwrap();
        assert!(
            s5.summary.mean > s1.summary.mean,
            "S5 rBB mean {} should exceed S1's {}",
            s5.summary.mean,
            s1.summary.mean
        );
    }
}
