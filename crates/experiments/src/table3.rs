//! Table III — the S1–S5 workload definitions, plus realized statistics
//! of each materialized workload (participation fraction, BB range,
//! node-hours) so the suite can be audited at any scale.

use crate::csv;
use crate::scale::ExpScale;
use mrsch_workload::suite::WorkloadSpec;

/// Realized statistics of a materialized workload.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// Workload name.
    pub name: String,
    /// Declared burst-buffer participation.
    pub spec_participation: f64,
    /// Observed fraction of jobs with a BB request.
    pub realized_participation: f64,
    /// Smallest nonzero BB request (units).
    pub bb_min: u64,
    /// Largest BB request (units).
    pub bb_max: u64,
    /// Total requested node·seconds (scaled workloads halve this).
    pub node_seconds: u128,
    /// Number of jobs.
    pub jobs: usize,
}

/// Materialize the S1–S5 suite at a scale and collect statistics.
pub fn run(scale: &ExpScale, seed: u64) -> Vec<WorkloadStats> {
    let base = scale.base_trace(seed);
    let system = scale.base_system();
    WorkloadSpec::two_resource_suite()
        .into_iter()
        .map(|spec| {
            let jobs = spec.build(&base, &system, seed ^ 0x7AB1E);
            let bbs: Vec<u64> =
                jobs.iter().map(|j| j.demands[1]).filter(|&b| b > 0).collect();
            WorkloadStats {
                name: spec.name.clone(),
                spec_participation: spec.bb_participation,
                realized_participation: bbs.len() as f64 / jobs.len() as f64,
                bb_min: bbs.iter().copied().min().unwrap_or(0),
                bb_max: bbs.iter().copied().max().unwrap_or(0),
                node_seconds: jobs
                    .iter()
                    .map(|j| j.demands[0] as u128 * j.runtime as u128)
                    .sum(),
                jobs: jobs.len(),
            }
        })
        .collect()
}

/// Print Table III with realized columns.
pub fn print(stats: &[WorkloadStats]) {
    println!("Table III — workloads (realized at current scale)");
    println!(
        "{:<4} {:>12} {:>12} {:>8} {:>8} {:>14}",
        "name", "spec part.", "real part.", "bb min", "bb max", "node-seconds"
    );
    for s in stats {
        println!(
            "{:<4} {:>12.2} {:>12.3} {:>8} {:>8} {:>14}",
            s.name, s.spec_participation, s.realized_participation, s.bb_min, s.bb_max,
            s.node_seconds
        );
    }
}

/// CSV rows for `results/table3.csv`.
pub fn csv_rows(stats: &[WorkloadStats]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "workload",
        "spec_participation",
        "realized_participation",
        "bb_min_units",
        "bb_max_units",
        "node_seconds",
        "jobs",
    ];
    let rows = stats
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                csv::f(s.spec_participation),
                csv::f(s.realized_participation),
                s.bb_min.to_string(),
                s.bb_max.to_string(),
                s.node_seconds.to_string(),
                s.jobs.to_string(),
            ]
        })
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_statistics_track_specs() {
        let stats = run(&ExpScale::quick(), 3);
        assert_eq!(stats.len(), 5);
        for s in &stats {
            assert!(
                (s.realized_participation - s.spec_participation).abs() < 0.08,
                "{}: realized {} vs spec {}",
                s.name,
                s.realized_participation,
                s.spec_participation
            );
        }
        // S5 has ~half the node-seconds of S4.
        let s4 = stats.iter().find(|s| s.name == "S4").unwrap();
        let s5 = stats.iter().find(|s| s.name == "S5").unwrap();
        let ratio = s5.node_seconds as f64 / s4.node_seconds as f64;
        assert!((ratio - 0.5).abs() < 0.1, "S5/S4 node-seconds {ratio}");
    }

    #[test]
    fn s3_bb_floor_above_s1() {
        let stats = run(&ExpScale::quick(), 4);
        let s1 = stats.iter().find(|s| s.name == "S1").unwrap();
        let s3 = stats.iter().find(|s| s.name == "S3").unwrap();
        assert!(s3.bb_min >= s1.bb_min, "S3 draws from the larger range");
    }

    #[test]
    fn csv_shape() {
        let stats = run(&ExpScale::quick(), 5);
        let (header, rows) = csv_rows(&stats);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.len(), header.len());
        }
    }
}
