//! Fig. 3 — state-module ablation: MLP vs CNN.
//!
//! Trains two otherwise-identical MRSch agents per workload — one with
//! the paper's MLP state module, one with the original DFP's CNN — and
//! compares the four evaluation metrics on S1–S5. The paper finds MLP
//! better by up to 7 % because scheduler state has no spatial locality
//! for convolutions to exploit.

use crate::comparison::train_mrsch;
use crate::csv;
use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_workload::split::paper_split;

/// One (workload, architecture) evaluation.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// `"MLP"` or `"CNN"`.
    pub arch: &'static str,
    /// Node utilization.
    pub node_util: f64,
    /// Burst-buffer utilization.
    pub bb_util: f64,
    /// Average job wait (hours).
    pub avg_wait_h: f64,
    /// Average job slowdown.
    pub avg_slowdown: f64,
}

/// Run the ablation over S1–S5.
pub fn run(scale: &ExpScale, seed: u64) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for spec in WorkloadSpec::two_resource_suite() {
        let system = spec.system_for(&scale.base_system());
        let trace = scale.base_trace(seed);
        let split = paper_split(&trace);
        let mut test = split.test;
        test.truncate(scale.eval_jobs);
        let jobs = spec.build(&test, &system, seed ^ 0xEA1);
        for (arch, kind) in
            [("MLP", StateModuleKind::Mlp), ("CNN", StateModuleKind::Cnn)]
        {
            let mut agent = train_mrsch(&spec, scale, seed, kind);
            let report = agent.evaluate(&jobs);
            rows.push(Fig3Row {
                workload: spec.name.clone(),
                arch,
                node_util: report.resource_utilization[0],
                bb_util: report.resource_utilization[1],
                avg_wait_h: report.avg_wait_hours(),
                avg_slowdown: report.avg_slowdown,
            });
        }
    }
    rows
}

/// Print the four panels of Fig. 3 as one table.
pub fn print(rows: &[Fig3Row]) {
    println!("Fig. 3 — MLP vs CNN state module (S1–S5)");
    println!(
        "{:<4} {:<4} {:>10} {:>10} {:>12} {:>12}",
        "wl", "arch", "node util", "bb util", "wait (h)", "slowdown"
    );
    for r in rows {
        println!(
            "{:<4} {:<4} {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
            r.workload, r.arch, r.node_util, r.bb_util, r.avg_wait_h, r.avg_slowdown
        );
    }
}

/// CSV rows for `results/fig3.csv`.
pub fn csv_rows(rows: &[Fig3Row]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header =
        vec!["workload", "arch", "node_util", "bb_util", "avg_wait_h", "avg_slowdown"];
    let data = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.arch.to_string(),
                csv::f(r.node_util),
                csv::f(r.bb_util),
                csv::f(r.avg_wait_h),
                csv::f(r.avg_slowdown),
            ]
        })
        .collect();
    (header, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "experiment-scale (trains 10 agents); run with --ignored / in CI"]
    fn ablation_produces_both_arches_per_workload() {
        let mut scale = ExpScale::quick();
        scale.eval_jobs = 20;
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        // Keep the test fast: only verify on a single workload by reusing
        // run() over the full suite at tiny scale.
        let rows = run(&scale, 11);
        assert_eq!(rows.len(), 10, "5 workloads x 2 architectures");
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].workload, pair[1].workload);
            assert_eq!(pair[0].arch, "MLP");
            assert_eq!(pair[1].arch, "CNN");
            for r in pair {
                assert!(r.node_util > 0.0 && r.node_util <= 1.0);
                assert!(r.avg_slowdown >= 1.0);
            }
        }
    }
}
