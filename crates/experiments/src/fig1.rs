//! Fig. 1 — the motivating example: statically weighting multiple
//! resources fails to schedule efficiently.
//!
//! Four one-hour jobs contend for two resources (A and B, each with
//! capacity 100 %). A fixed-priority greedy scheduler (equal weights on
//! both utilizations) picks `(J2, J3)` first and needs **3 hours**; the
//! ideal order `(J1, J3)` then `(J2, J4)` needs **2 hours**. The concrete
//! demand values below realize exactly the decision pattern described in
//! the paper's §I.

use mrsim::job::Job;
use mrsim::policy::{Policy, SchedulerView};
use mrsim::resources::SystemConfig;
use mrsim::simulator::{SimParams, Simulator};

/// Outcome of the motivating example.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig1Result {
    /// Makespan (hours) under the fixed-weight greedy scheduler.
    pub fixed_weight_makespan_h: f64,
    /// Makespan (hours) under the ideal order.
    pub ideal_makespan_h: f64,
    /// Start hour of each job (by id) under the fixed-weight scheduler.
    pub fixed_weight_starts_h: Vec<f64>,
    /// Start hour of each job (by id) under the ideal order.
    pub ideal_starts_h: Vec<f64>,
}

const HOUR: u64 = 3600;

/// The two-resource system of the example (capacities as percentages).
pub fn system() -> SystemConfig {
    SystemConfig::new(vec![
        mrsim::resources::ResourceSpec::new("resource_a", 100),
        mrsim::resources::ResourceSpec::new("resource_b", 100),
    ])
}

/// The four jobs of Fig. 1(a). Demands are percentages of capacity; all
/// jobs run one hour and arrive together.
pub fn jobs() -> Vec<Job> {
    vec![
        Job::new(0, 0, HOUR, HOUR, vec![80, 10]), // J1: A-heavy
        Job::new(1, 0, HOUR, HOUR, vec![55, 55]), // J2: big & balanced
        Job::new(2, 0, HOUR, HOUR, vec![20, 45]), // J3
        Job::new(3, 0, HOUR, HOUR, vec![45, 15]), // J4
    ]
}

/// Fixed-priority greedy policy: at every decision pick the *fitting*
/// window job that maximizes the equal-weighted post-placement
/// utilization — the "fixed weight method" of the example.
#[derive(Debug, Default)]
pub struct FixedWeightGreedy;

impl Policy for FixedWeightGreedy {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        let caps = view.config.capacities();
        let mut best: Option<(usize, f64)> = None;
        for (idx, jv) in view.window.iter().enumerate() {
            if !view.pools.fits(&jv.job.demands) {
                continue;
            }
            let gain: f64 = jv
                .job
                .demands
                .iter()
                .zip(&caps)
                .map(|(&d, &c)| if c == 0 { 0.0 } else { 0.5 * d as f64 / c as f64 })
                .sum();
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((idx, gain));
            }
        }
        best.map(|(idx, _)| idx)
    }

    fn name(&self) -> &'static str {
        "fixed_weight_greedy"
    }
}

/// Policy that selects jobs in a fixed priority order (the "ideal" order
/// an oracle would pick).
#[derive(Debug)]
pub struct FixedOrder {
    order: Vec<usize>,
}

impl FixedOrder {
    /// Priority list of job ids, most preferred first.
    pub fn new(order: Vec<usize>) -> Self {
        Self { order }
    }
}

impl Policy for FixedOrder {
    fn select(&mut self, view: &SchedulerView<'_>) -> Option<usize> {
        for &jid in &self.order {
            if let Some(idx) = view.window.iter().position(|jv| jv.job.id == jid) {
                if view.pools.fits(&view.window[idx].job.demands) {
                    return Some(idx);
                }
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "fixed_order"
    }
}

/// Run both schedules.
pub fn run() -> Fig1Result {
    let params = SimParams::new(4, false);
    let run_with = |policy: &mut dyn Policy| {
        let mut sim = Simulator::new(system(), jobs(), params).unwrap();
        let report = sim.run(policy);
        let starts = report
            .records
            .iter()
            .map(|r| r.start as f64 / HOUR as f64)
            .collect::<Vec<_>>();
        (report.makespan as f64 / HOUR as f64, starts)
    };
    let (fixed_weight_makespan_h, fixed_weight_starts_h) = run_with(&mut FixedWeightGreedy);
    let (ideal_makespan_h, ideal_starts_h) =
        run_with(&mut FixedOrder::new(vec![0, 2, 1, 3]));
    Fig1Result {
        fixed_weight_makespan_h,
        ideal_makespan_h,
        fixed_weight_starts_h,
        ideal_starts_h,
    }
}

/// Print the example the way the paper narrates it.
pub fn print(result: &Fig1Result) {
    println!("Fig. 1 — motivating example (two resources, four 1-hour jobs)");
    println!(
        "  fixed-weight greedy : makespan {:.0} h, starts (h) {:?}",
        result.fixed_weight_makespan_h, result.fixed_weight_starts_h
    );
    println!(
        "  ideal order         : makespan {:.0} h, starts (h) {:?}",
        result.ideal_makespan_h, result.ideal_starts_h
    );
    println!(
        "  => statically weighted objectives lose {:.0} h of makespan",
        result.fixed_weight_makespan_h - result.ideal_makespan_h
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_weight_needs_three_hours() {
        let r = run();
        assert_eq!(r.fixed_weight_makespan_h, 3.0, "paper: three hours");
    }

    #[test]
    fn ideal_order_needs_two_hours() {
        let r = run();
        assert_eq!(r.ideal_makespan_h, 2.0, "paper: two hours");
    }

    #[test]
    fn fixed_weight_first_wave_is_j2_j3() {
        let r = run();
        // J2 (id 1) and J3 (id 2) start at hour 0 under fixed weights.
        assert_eq!(r.fixed_weight_starts_h[1], 0.0);
        assert_eq!(r.fixed_weight_starts_h[2], 0.0);
        assert!(r.fixed_weight_starts_h[0] > 0.0);
        assert!(r.fixed_weight_starts_h[3] > 0.0);
    }

    #[test]
    fn ideal_waves_are_j1_j3_then_j2_j4() {
        let r = run();
        assert_eq!(r.ideal_starts_h, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn every_pairing_constraint_of_the_figure_holds() {
        let js = jobs();
        let cap = 100u64;
        let fits2 = |a: usize, b: usize| {
            js[a].demands[0] + js[b].demands[0] <= cap
                && js[a].demands[1] + js[b].demands[1] <= cap
        };
        assert!(fits2(0, 2), "ideal wave 1 (J1, J3)");
        assert!(fits2(1, 3), "ideal wave 2 (J2, J4)");
        assert!(fits2(1, 2), "greedy wave (J2, J3)");
        assert!(!fits2(0, 1), "J1+J2 conflict on A");
        assert!(!fits2(0, 3), "J1+J4 conflict on A (forces 3rd hour)");
    }
}
