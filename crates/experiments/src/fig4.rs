//! Fig. 4 — convergence under the six curriculum orderings (§III-D).
//!
//! Trains one fresh agent per ordering of {sampled, real, synthetic} job
//! sets and records the evaluation loss after every episode. The paper's
//! finding: *sampled → real → synthetic* converges fastest to the lowest
//! MSE.

use crate::csv;
use crate::scale::ExpScale;
use mrsch::prelude::*;
use mrsch_workload::jobset::{curriculum, CurriculumOrder};
use mrsch_workload::split::paper_split;

/// Loss curve for one curriculum ordering.
#[derive(Clone, Debug)]
pub struct Fig4Curve {
    /// Legend label, e.g. `"Sampled+Real+Synthetic"`.
    pub label: String,
    /// Evaluation loss after each training episode.
    pub losses: Vec<f32>,
}

/// Train one agent per ordering and collect loss curves.
pub fn run(scale: &ExpScale, seed: u64) -> Vec<Fig4Curve> {
    let spec = WorkloadSpec::s1();
    let trace = scale.base_trace(seed);
    let split = paper_split(&trace);
    CurriculumOrder::all()
        .into_iter()
        .map(|order| {
            let sets = curriculum(
                order,
                &split.train,
                &scale.trace_config(),
                scale.sets_per_phase,
                scale.jobs_per_set,
                seed ^ 0xF194,
            );
            let mut mrsch = MrschBuilder::new(scale.base_system(), scale.sim_params())
                .seed(seed)
                .batches_per_episode(scale.batches_per_episode)
                .build();
            let mut losses = Vec::new();
            for round in 0..scale.train_rounds {
                let outcome =
                    mrsch.train_curriculum(&sets, &spec, seed.wrapping_add(round as u64));
                losses.extend(outcome.episode_losses);
            }
            Fig4Curve { label: order.label(), losses }
        })
        .collect()
}

/// Print the loss curves as rows (one column per episode).
pub fn print(curves: &[Fig4Curve]) {
    println!("Fig. 4 — training loss by curriculum ordering");
    for c in curves {
        let series: Vec<String> = c.losses.iter().map(|l| format!("{l:.4}")).collect();
        println!("  {:<28} {}", c.label, series.join(" "));
    }
    if let Some(best) = best_final(curves) {
        println!("  => lowest final loss: {best}");
    }
}

/// Label of the ordering with the lowest final (finite) loss.
pub fn best_final(curves: &[Fig4Curve]) -> Option<String> {
    curves
        .iter()
        .filter_map(|c| {
            c.losses
                .iter()
                .rev()
                .find(|l| l.is_finite())
                .map(|l| (c.label.clone(), *l))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(label, _)| label)
}

/// CSV rows for `results/fig4.csv`: one row per (ordering, episode).
pub fn csv_rows(curves: &[Fig4Curve]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec!["ordering", "episode", "loss"];
    let rows = curves
        .iter()
        .flat_map(|c| {
            c.losses.iter().enumerate().map(move |(i, l)| {
                vec![c.label.clone(), i.to_string(), csv::f(*l as f64)]
            })
        })
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "experiment-scale (6 curricula); run with --ignored / in CI"]
    fn six_curves_with_expected_lengths() {
        let mut scale = ExpScale::quick();
        scale.jobs_per_set = 15;
        scale.batches_per_episode = 2;
        let curves = run(&scale, 21);
        assert_eq!(curves.len(), 6);
        let expected = scale.sets_per_phase * 3 * scale.train_rounds;
        for c in &curves {
            assert_eq!(c.losses.len(), expected);
        }
        // Labels are the six distinct orderings.
        let mut labels: Vec<&str> = curves.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn best_final_returns_some_label() {
        let curves = vec![
            Fig4Curve { label: "a".into(), losses: vec![1.0, 0.5] },
            Fig4Curve { label: "b".into(), losses: vec![1.0, 0.2] },
        ];
        assert_eq!(best_final(&curves), Some("b".into()));
    }
}
