//! Regenerate Fig. 10 (three-resource case study on S6-S10).
use mrsch_experiments::{csv, fig10, ExpScale};

fn main() {
    let charts = fig10::run(&ExpScale::full(), 2022);
    fig10::print(&charts);
    let (header, rows) = fig10::csv_rows(&charts);
    if let Ok(path) = csv::write_results("fig10", &header, &rows) {
        println!("wrote {path}");
    }
}
