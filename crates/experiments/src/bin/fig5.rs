//! Regenerate Fig. 5 (system-level metrics, four methods on S1-S5).
use mrsch_experiments::comparison::run_suite;
use mrsch_experiments::{csv, fig5, ExpScale};
use mrsch_workload::suite::WorkloadSpec;

fn main() {
    let results = run_suite(&WorkloadSpec::two_resource_suite(), &ExpScale::full(), 2022);
    fig5::print(&results);
    let (header, rows) = fig5::csv_rows(&results);
    if let Ok(path) = csv::write_results("fig5", &header, &rows) {
        println!("wrote {path}");
    }
}
