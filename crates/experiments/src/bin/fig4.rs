//! Regenerate Fig. 4 (training-curriculum orderings).
use mrsch_experiments::{csv, fig4, ExpScale};

fn main() {
    let curves = fig4::run(&ExpScale::full(), 2022);
    fig4::print(&curves);
    let (header, rows) = fig4::csv_rows(&curves);
    if let Ok(path) = csv::write_results("fig4", &header, &rows) {
        println!("wrote {path}");
    }
}
