//! Regenerate Table III (workload suite definitions, realized).
use mrsch_experiments::{csv, table3, ExpScale};

fn main() {
    let stats = table3::run(&ExpScale::full(), 2022);
    table3::print(&stats);
    let (header, rows) = table3::csv_rows(&stats);
    if let Ok(path) = csv::write_results("table3", &header, &rows) {
        println!("wrote {path}");
    }
}
