//! Regenerate Fig. 7 (Kiviat charts, four methods on S1-S5).
use mrsch_experiments::comparison::run_suite;
use mrsch_experiments::{csv, fig7, ExpScale};
use mrsch_workload::suite::WorkloadSpec;

fn main() {
    let results = run_suite(&WorkloadSpec::two_resource_suite(), &ExpScale::full(), 2022);
    let charts = fig7::run(&results);
    fig7::print(&charts);
    println!("MRSch largest area on every workload: {}", fig7::mrsch_wins_everywhere(&charts));
    let (header, rows) = fig7::csv_rows(&charts);
    if let Ok(path) = csv::write_results("fig7", &header, &rows) {
        println!("wrote {path}");
    }
}
