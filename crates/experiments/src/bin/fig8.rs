//! Regenerate Fig. 8 (rBB fluctuation over 12 hours under S5).
use mrsch_experiments::{csv, fig8, ExpScale};

fn main() {
    let series = fig8::run(&ExpScale::full(), 2022);
    fig8::print(&series);
    let (header, rows) = fig8::csv_rows(&series);
    if let Ok(path) = csv::write_results("fig8", &header, &rows) {
        println!("wrote {path}");
    }
}
