//! Regenerate the §V-F decision-latency measurement.
use mrsch_experiments::overhead;

fn main() {
    let results = overhead::run(10);
    overhead::print(&results);
}
