//! Disruption-curriculum comparison: clean-trained vs hardened MRSch
//! (and FCFS) on a disrupted held-out trace.
//!
//! ```text
//! cargo run -p mrsch-experiments --release --bin disruption_curriculum [workers]
//! ```

use mrsch_experiments::{csv, disruption_curriculum, ExpScale};

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let rows = disruption_curriculum::run(&ExpScale::full(), 1, workers);
    disruption_curriculum::print(&rows);
    let (header, body) = disruption_curriculum::csv_rows(&rows);
    if let Ok(path) = csv::write_results("disruption_curriculum", &header, &body) {
        println!("wrote {path}");
    }
}
