//! Multi-seed replication of the method comparison on S4 and S5.
use mrsch_experiments::{csv, multi_seed, ExpScale};
use mrsch_workload::suite::WorkloadSpec;

fn main() {
    let scale = ExpScale::full();
    let seeds = [2022, 2023, 2024];
    let mut all = Vec::new();
    for spec in [WorkloadSpec::s4(), WorkloadSpec::s5()] {
        let rows = multi_seed::run_workload_multi_seed(&spec, &scale, &seeds);
        multi_seed::print(&rows);
        all.extend(rows);
    }
    let (header, rows) = multi_seed::csv_rows(&all);
    if let Ok(path) = csv::write_results("multi_seed", &header, &rows) {
        println!("wrote {path}");
    }
}
