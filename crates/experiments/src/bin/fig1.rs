//! Regenerate Fig. 1 (motivating example).
use mrsch_experiments::fig1;

fn main() {
    let result = fig1::run();
    fig1::print(&result);
}
