//! `mrsch_cli` — run MRSch and the baseline schedulers on SWF traces,
//! or evaluate whole policy × scenario × seed grids.
//!
//! ```text
//! mrsch_cli simulate --swf trace.swf --workload S4 --nodes 256 --bb 75 --policy mrsch
//! mrsch_cli resume --from snaps/shard-0000.snap --policy fcfs
//! mrsch_cli evaluate --policy fcfs,mrsch --scenario drain --seeds 0..4
//! mrsch_cli serve --mode tcp --addr 127.0.0.1:7077 --batch 8 --delay-us 2000
//! ```
use mrsch_experiments::cli;

fn usage() -> ! {
    eprintln!(
        "usage: mrsch_cli [simulate] --swf FILE [--workload S1..S10] [--nodes N] [--bb B] \
         [--policy fcfs|sjf|ljf|ga|mrsch] [--window W] [--seed S] \
         [--train-episodes K] [--model OUT.ckpt] [--load IN.ckpt] \
         [--workers N] [--pipeline [--max-staleness K]] \
         [--snapshot-every N --snapshot-dir DIR]\n\
         \n\
         mrsch_cli resume --from DIR/shard-0000.snap [--policy fcfs|sjf|ljf|ga] [--seed S]\n\
         \n\
         mrsch_cli evaluate --policy P1,P2|all --scenario clean,cancel-heavy,overrun-heavy,\
         drain,mixed,dag:chain[:L],dag:fanout[:W],bursty:diurnal[:PCT],bursty:spike[:BOOST],\
         energy:drain|all --seeds A..B [--workload S1..S10] [--nodes N] [--bb B] [--window W] \
         [--jobs N | --swf FILE] [--train-episodes K] [--workers N] \
         [--policy-cache DIR [--require-warm-cache]] [--csv GRID.csv]\n\
         \n\
         mrsch_cli serve [--mode stdin|tcp|loadtest] [--addr HOST:PORT] [--policy mrsch] \
         [--batch N] [--delay-us T] [--workers N] [--requests N] [--qps Q] (serve --help for all)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `serve` owns its own --help; everything else shares the top-level usage.
    if args.first().map(String::as_str) != Some("serve")
        && (args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h"))
    {
        usage();
    }
    let result = match args[0].as_str() {
        "evaluate" => cli::evaluate_main(&args[1..]),
        "resume" => cli::resume_main(&args[1..]),
        "serve" => mrsch_serve::cli::serve_main(&args[1..]).map(|s| format!("{s}\n")),
        "simulate" => cli::main_with_args(&args[1..]),
        _ => cli::main_with_args(&args),
    };
    match result {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
