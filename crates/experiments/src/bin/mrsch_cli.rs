//! `mrsch_cli` — run MRSch and the baseline schedulers on SWF traces.
//!
//! ```text
//! mrsch_cli --swf trace.swf --workload S4 --nodes 256 --bb 75 --policy mrsch
//! ```
use mrsch_experiments::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: mrsch_cli --swf FILE [--workload S1..S10] [--nodes N] [--bb B] \
             [--policy fcfs|sjf|ljf|ga|mrsch] [--window W] [--seed S] \
             [--train-episodes K] [--model OUT.ckpt] [--load IN.ckpt]"
        );
        std::process::exit(2);
    }
    match cli::main_with_args(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
