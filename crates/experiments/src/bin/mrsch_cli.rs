//! `mrsch_cli` — run MRSch and the baseline schedulers on SWF traces,
//! or evaluate whole policy × scenario × seed grids.
//!
//! ```text
//! mrsch_cli simulate --swf trace.swf --workload S4 --nodes 256 --bb 75 --policy mrsch
//! mrsch_cli evaluate --policy fcfs,mrsch --scenario drain --seeds 0..4
//! ```
use mrsch_experiments::cli;

fn usage() -> ! {
    eprintln!(
        "usage: mrsch_cli [simulate] --swf FILE [--workload S1..S10] [--nodes N] [--bb B] \
         [--policy fcfs|sjf|ljf|ga|mrsch] [--window W] [--seed S] \
         [--train-episodes K] [--model OUT.ckpt] [--load IN.ckpt]\n\
         \n\
         mrsch_cli evaluate --policy P1,P2|all --scenario clean,cancel-heavy,overrun-heavy,\
         drain,mixed|all --seeds A..B [--workload S1..S10] [--nodes N] [--bb B] [--window W] \
         [--jobs N | --swf FILE] [--train-episodes K] [--workers N] [--csv GRID.csv]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let result = match args[0].as_str() {
        "evaluate" => cli::evaluate_main(&args[1..]),
        "simulate" => cli::main_with_args(&args[1..]),
        _ => cli::main_with_args(&args),
    };
    match result {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
