//! Generate a synthetic Theta-like trace and write it as SWF — handy for
//! demoing `mrsch_cli` and for feeding other SWF consumers.
//!
//! ```text
//! gen_swf <machine_nodes> <num_jobs> <seed> > trace.swf
//! ```
use mrsch_workload::swf::to_swf;
use mrsch_workload::theta::ThetaConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let jobs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let cfg = ThetaConfig { machine_nodes: nodes, ..ThetaConfig::scaled(jobs) };
    print!("{}", to_swf(&cfg.generate(seed)));
}
