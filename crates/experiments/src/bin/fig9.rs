//! Regenerate Fig. 9 (box plot of rBB across S1-S5).
use mrsch_experiments::{csv, fig9, ExpScale};

fn main() {
    let boxes = fig9::run(&ExpScale::full(), 2022);
    fig9::print(&boxes);
    let (header, rows) = fig9::csv_rows(&boxes);
    if let Ok(path) = csv::write_results("fig9", &header, &rows) {
        println!("wrote {path}");
    }
}
