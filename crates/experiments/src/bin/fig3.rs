//! Regenerate Fig. 3 (MLP vs CNN state module).
use mrsch_experiments::{csv, fig3, ExpScale};

fn main() {
    let rows = fig3::run(&ExpScale::full(), 2022);
    fig3::print(&rows);
    let (header, data) = fig3::csv_rows(&rows);
    if let Ok(path) = csv::write_results("fig3", &header, &data) {
        println!("wrote {path}");
    }
}
