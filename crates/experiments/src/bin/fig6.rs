//! Regenerate Fig. 6 (user-level metrics, four methods on S1-S5).
use mrsch_experiments::comparison::run_suite;
use mrsch_experiments::{csv, fig6, ExpScale};
use mrsch_workload::suite::WorkloadSpec;

fn main() {
    let results = run_suite(&WorkloadSpec::two_resource_suite(), &ExpScale::full(), 2022);
    fig6::print(&results);
    let (wait_pct, sd_pct) = fig6::mrsch_improvements(&results);
    println!("MRSch best wait reduction: {wait_pct:.1}% ; best slowdown reduction: {sd_pct:.1}%");
    let (header, rows) = fig6::csv_rows(&results);
    if let Ok(path) = csv::write_results("fig6", &header, &rows) {
        println!("wrote {path}");
    }
}
