//! Run the design-choice ablations (goal mode, starvation guards, window
//! size) at full scale.
use mrsch_experiments::{ablation, csv, ExpScale};

fn main() {
    let scale = ExpScale::full();
    let goal = ablation::goal_mode(&scale, 2022);
    ablation::print("dynamic vs fixed goal (S5)", &goal);
    let guards = ablation::starvation_guards(&scale, 2022);
    ablation::print("starvation guards on/off (S4)", &guards);
    let windows = ablation::window_size(&scale, 2022, &[1, 5, 10, 20]);
    ablation::print("window size (S4)", &windows);
    let mut all = goal;
    all.extend(guards);
    all.extend(windows);
    let (header, rows) = ablation::csv_rows(&all);
    if let Ok(path) = csv::write_results("ablation", &header, &rows) {
        println!("wrote {path}");
    }
}
