//! Fig. 5 — system-level metrics: node and burst-buffer utilization for
//! the four methods on S1–S5.

use crate::comparison::Comparison;
use crate::csv;

/// Print the two panels of Fig. 5.
pub fn print(results: &[Comparison]) {
    println!("Fig. 5 — system-level metrics (utilization %)");
    println!(
        "{:<4} {:<14} {:>10} {:>10}",
        "wl", "method", "node util", "bb util"
    );
    for r in results {
        println!(
            "{:<4} {:<14} {:>10.1} {:>10.1}",
            r.workload,
            r.method.label(),
            100.0 * r.report.resource_utilization[0],
            100.0 * r.report.resource_utilization[1],
        );
    }
}

/// CSV rows for `results/fig5.csv`.
pub fn csv_rows(results: &[Comparison]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec!["workload", "method", "node_util", "bb_util"];
    let rows = results
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.method.label().to_string(),
                csv::f(r.report.resource_utilization[0]),
                csv::f(r.report.resource_utilization[1]),
            ]
        })
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::MethodName;
    use mrsim::metrics::{MetricsCollector, SimReport};

    fn fake(workload: &str, method: MethodName, node: f64, bb: f64) -> Comparison {
        let mc = MetricsCollector::new(2);
        let mut report = SimReport::assemble(
            vec!["nodes".into(), "burst_buffer_tb".into()],
            vec![],
            &mc,
            &[1, 1],
            0,
            0,
            0,
            mrsim::EventCounts::new(),
            0,
            None,
        );
        report.resource_utilization = vec![node, bb];
        Comparison { method, workload: workload.into(), report }
    }

    #[test]
    fn csv_rows_align_with_results() {
        let results = vec![
            fake("S1", MethodName::Mrsch, 0.9, 0.5),
            fake("S1", MethodName::Heuristic, 0.6, 0.3),
        ];
        let (header, rows) = csv_rows(&results);
        assert_eq!(header.len(), 4);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], "MRSch");
        assert_eq!(rows[0][2], "0.9000");
    }
}
