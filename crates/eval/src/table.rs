//! Shared CSV/table emission helpers (no external dependency).
//!
//! Every experiment binary and the evaluation harness emit tables
//! through these helpers so the quoting rules live in one place
//! (`mrsch_experiments::csv` re-exports this module for the figure
//! drivers).

use std::fmt::Write as _;
use std::path::Path;

/// Render rows as CSV. Fields containing commas/quotes/newlines are
/// quoted with doubled inner quotes.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    writeln_row(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        writeln_row(&mut out, row);
    }
    out
}

fn writeln_row(out: &mut String, row: &[String]) {
    let line = row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(",");
    let _ = writeln!(out, "{line}");
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write CSV to `results/<name>.csv` relative to the workspace root
/// (creating the directory), returning the path written.
pub fn write_results(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, to_csv(header, rows))?;
    Ok(path.display().to_string())
}

/// Write CSV to an explicit path (creating parent directories),
/// returning the path written.
pub fn write_csv_to(path: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let p = Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(p, to_csv(header, rows))?;
    Ok(p.display().to_string())
}

/// Format a float with 4 decimal places (the precision used in reports).
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        let csv = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn commas_and_quotes_escaped() {
        let csv = to_csv(&["x"], &[vec!["a,b".into()], vec!["say \"hi\"".into()]]);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_format() {
        assert_eq!(f(0.123456), "0.1235");
        assert_eq!(f(2.0), "2.0000");
    }
}
