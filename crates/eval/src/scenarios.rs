//! Named scenario presets: the disruption families every driver and the
//! CLI `evaluate` subcommand can request by name (`clean`,
//! `cancel-heavy`, `overrun-heavy`, `drain`, `mixed`).
//!
//! A preset is just a [`Scenario`] recipe: the caller supplies *where
//! jobs come from* and the preset layers the disruption family on top,
//! deriving drain timing from the source's submit horizon (a drain a
//! third of the way into the trace, paper-style).

use mrsch::prelude::*;
use mrsch_workload::scenario::mix_seed;

/// The registered scenario names, in canonical order.
pub fn scenario_names() -> [&'static str; 5] {
    ["clean", "cancel-heavy", "overrun-heavy", "drain", "mixed"]
}

/// Max submit time of a probe trace of the source — the horizon used to
/// place drains proportionally.
fn submit_horizon(source: &JobSource, seed: u64) -> u64 {
    source
        .trace(mix_seed(seed, 1))
        .iter()
        .map(|t| t.submit)
        .max()
        .unwrap_or(0)
}

/// A 25 % node drain a third of the way into the horizon, lasting a
/// third of the horizon (at least one simulated hour).
fn drain_spec(horizon: u64) -> DrainSpec {
    DrainSpec {
        resource: 0,
        fraction: 0.25,
        at: horizon / 3,
        duration: (horizon / 3).max(3600),
    }
}

/// Build a named scenario over the given job source and workload spec.
///
/// Accepted names (underscores and hyphens are interchangeable):
/// * `clean` — no disruptions,
/// * `cancel-heavy` — 20 % user cancellations + 10 % walltime overruns,
/// * `overrun-heavy` — 25 % overruns at 2× the estimate + 5 % cancels,
/// * `drain` — a 25 % node drain a third of the way into the trace,
/// * `mixed` — cancels + overruns + the drain together.
pub fn named_scenario(
    name: &str,
    source: JobSource,
    spec: WorkloadSpec,
    params: SimParams,
    seed: u64,
) -> Result<Scenario, String> {
    let norm = name.trim().to_lowercase().replace('_', "-");
    let clean = Scenario::new("clean", source, spec, params).with_seed(seed);
    let scenario = match norm.as_str() {
        "clean" => clean,
        "cancel-heavy" => clean.with_disruption(
            "cancel-heavy",
            DisruptionConfig {
                cancel_fraction: 0.2,
                overrun_fraction: 0.1,
                overrun_factor: 1.5,
                drains: Vec::new(),
            },
        ),
        "overrun-heavy" => clean.with_disruption(
            "overrun-heavy",
            DisruptionConfig {
                cancel_fraction: 0.05,
                overrun_fraction: 0.25,
                overrun_factor: 2.0,
                drains: Vec::new(),
            },
        ),
        "drain" => {
            let horizon = submit_horizon(&clean.source, seed);
            clean.with_disruption(
                "drain",
                DisruptionConfig { drains: vec![drain_spec(horizon)], ..Default::default() },
            )
        }
        "mixed" => {
            let horizon = submit_horizon(&clean.source, seed);
            clean.with_disruption(
                "mixed",
                DisruptionConfig {
                    cancel_fraction: 0.15,
                    overrun_fraction: 0.1,
                    overrun_factor: 1.5,
                    drains: vec![drain_spec(horizon)],
                },
            )
        }
        other => {
            return Err(format!(
                "unknown scenario '{other}' (expected one of: {})",
                scenario_names().join(", ")
            ))
        }
    };
    Ok(scenario)
}

/// Parse a comma-separated scenario-name list over one shared source;
/// `all` expands to every registered name.
pub fn named_scenarios(
    names: &str,
    source: &JobSource,
    spec: &WorkloadSpec,
    params: SimParams,
    seed: u64,
) -> Result<Vec<Scenario>, String> {
    let expanded: Vec<String> = if names.trim().eq_ignore_ascii_case("all") {
        scenario_names().iter().map(|s| s.to_string()).collect()
    } else {
        names
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().to_string())
            .collect()
    };
    if expanded.is_empty() {
        return Err("no scenarios given".into());
    }
    expanded
        .iter()
        .map(|n| named_scenario(n, source.clone(), spec.clone(), params, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::event::EventKind;

    fn source() -> JobSource {
        JobSource::Theta(ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(30) })
    }

    #[test]
    fn every_registered_name_builds() {
        for name in scenario_names() {
            let s = named_scenario(name, source(), WorkloadSpec::s1(), SimParams::new(4, true), 7)
                .unwrap();
            assert_eq!(s.name, name);
        }
        assert!(named_scenario("bogus", source(), WorkloadSpec::s1(), SimParams::new(4, true), 7)
            .is_err());
    }

    #[test]
    fn drain_scenario_emits_capacity_events() {
        let s = named_scenario("drain", source(), WorkloadSpec::s1(), SimParams::new(4, true), 7)
            .unwrap();
        let ep = s.materialize(&SystemConfig::two_resource(32, 12), 0);
        assert!(ep
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CapacityChange { .. })));
    }

    #[test]
    fn overruns_switch_on_walltime_enforcement() {
        let s = named_scenario(
            "overrun_heavy",
            source(),
            WorkloadSpec::s1(),
            SimParams::new(4, true),
            7,
        )
        .unwrap();
        assert!(s.params.enforce_walltime);
        assert_eq!(s.name, "overrun-heavy", "underscores normalize to hyphens");
    }

    #[test]
    fn all_expands_to_every_name() {
        let list =
            named_scenarios("all", &source(), &WorkloadSpec::s1(), SimParams::new(4, true), 3)
                .unwrap();
        assert_eq!(list.len(), scenario_names().len());
        let two =
            named_scenarios("clean,drain", &source(), &WorkloadSpec::s1(), SimParams::new(4, true), 3)
                .unwrap();
        assert_eq!(two.len(), 2);
    }
}
