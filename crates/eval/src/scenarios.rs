//! Deprecated name-based scenario lookup, kept as a thin shim over the
//! string-addressable registry in [`crate::scenario_registry`].
//!
//! Earlier drivers requested scenarios through a closed five-name match
//! (`clean`, `cancel-heavy`, `overrun-heavy`, `drain`, `mixed`). The
//! registry supersedes that with parsed [`ScenarioSpec`]s covering DAG,
//! bursty and energy families too; these functions survive only so old
//! call sites keep compiling and the historical `all` → five-name
//! expansion stays stable for pinned grids.
//!
//! [`ScenarioSpec`]: crate::scenario_registry::ScenarioSpec

use mrsch::prelude::*;

use crate::scenario_registry::ScenarioSpec;

/// The legacy registered scenario names, in canonical order.
#[deprecated(note = "use ScenarioSpec::registered(), which covers the dag/bursty/energy families")]
pub fn scenario_names() -> [&'static str; 5] {
    ["clean", "cancel-heavy", "overrun-heavy", "drain", "mixed"]
}

/// Build a named scenario over the given job source and workload spec.
///
/// Accepts any registry spec string (underscores and hyphens are
/// interchangeable), not just the legacy five.
#[deprecated(note = "use ScenarioSpec::parse(name)?.build(...)")]
pub fn named_scenario(
    name: &str,
    source: JobSource,
    spec: WorkloadSpec,
    params: SimParams,
    seed: u64,
) -> Result<Scenario, String> {
    let parsed = ScenarioSpec::parse(name).map_err(|e| e.to_string())?;
    Ok(parsed.build(source, spec, params, seed))
}

/// Parse a comma-separated scenario-name list over one shared source.
///
/// `all` expands to the **legacy five** names only (pinned by historical
/// grids); use [`crate::scenario_registry::build_scenarios`] to get the
/// full registry expansion.
#[deprecated(note = "use scenario_registry::build_scenarios (note: its `all` covers the full registry)")]
pub fn named_scenarios(
    names: &str,
    source: &JobSource,
    spec: &WorkloadSpec,
    params: SimParams,
    seed: u64,
) -> Result<Vec<Scenario>, String> {
    #[allow(deprecated)]
    let expanded: Vec<String> = if names.trim().eq_ignore_ascii_case("all") {
        scenario_names().iter().map(|s| s.to_string()).collect()
    } else {
        names
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().to_string())
            .collect()
    };
    if expanded.is_empty() {
        return Err("no scenarios given".into());
    }
    #[allow(deprecated)]
    expanded
        .iter()
        .map(|n| named_scenario(n, source.clone(), spec.clone(), params, seed))
        .collect()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use mrsim::event::EventKind;

    fn source() -> JobSource {
        JobSource::Theta(ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(30) })
    }

    #[test]
    fn every_registered_name_builds() {
        for name in scenario_names() {
            let s = named_scenario(name, source(), WorkloadSpec::s1(), SimParams::new(4, true), 7)
                .unwrap();
            assert_eq!(s.name, name);
        }
        assert!(named_scenario("bogus", source(), WorkloadSpec::s1(), SimParams::new(4, true), 7)
            .is_err());
    }

    #[test]
    fn shim_accepts_new_registry_specs_too() {
        let s = named_scenario(
            "dag:chain:3",
            source(),
            WorkloadSpec::s1(),
            SimParams::new(4, true),
            7,
        )
        .unwrap();
        assert_eq!(s.name, "dag:chain:3");
        assert!(s.dag.is_some());
    }

    #[test]
    fn drain_scenario_emits_capacity_events() {
        let s = named_scenario("drain", source(), WorkloadSpec::s1(), SimParams::new(4, true), 7)
            .unwrap();
        let ep = s.materialize(&SystemConfig::two_resource(32, 12), 0);
        assert!(ep
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CapacityChange { .. })));
    }

    #[test]
    fn overruns_switch_on_walltime_enforcement() {
        let s = named_scenario(
            "overrun_heavy",
            source(),
            WorkloadSpec::s1(),
            SimParams::new(4, true),
            7,
        )
        .unwrap();
        assert!(s.params.enforce_walltime);
        assert_eq!(s.name, "overrun-heavy", "underscores normalize to hyphens");
    }

    #[test]
    fn all_expands_to_every_name() {
        let list =
            named_scenarios("all", &source(), &WorkloadSpec::s1(), SimParams::new(4, true), 3)
                .unwrap();
        assert_eq!(list.len(), scenario_names().len());
        let two =
            named_scenarios("clean,drain", &source(), &WorkloadSpec::s1(), SimParams::new(4, true), 3)
                .unwrap();
        assert_eq!(two.len(), 2);
    }
}
