//! **mrsch-eval** — the unified policy registry and scenario evaluation
//! harness: "run policy P on scenario S" as a first-class, one-call
//! operation.
//!
//! The MRSch paper's headline results are cross-policy comparisons
//! (MRSch vs FCFS vs GA vs scalar-RL across workloads, seeds and
//! disruptions). This crate gives that comparison a single API instead
//! of per-driver plumbing:
//!
//! * [`registry::PolicySpec`] — a string-addressable policy
//!   (`"fcfs"`, `"list:lpt"`, `"ga"`, `"scalar-rl"`, `"mrsch"`, ...)
//!   that knows how to build, optionally **train** (through the
//!   `mrsch::engine` curriculum machinery) and instantiate a boxed
//!   [`mrsim::Policy`] for evaluation;
//! * [`harness::EvalPlan`] — `policies × scenarios × seeds`, executed
//!   as a worker-threaded grid with a deterministic merge (worker count
//!   never changes results);
//! * [`harness::EvalGrid`] — per-cell `SimReport`s, multi-seed
//!   [`harness::Aggregate`]s, and one shared CSV/table emitter
//!   ([`table`]);
//! * [`scenario_registry::ScenarioSpec`] — a string-addressable
//!   scenario (`"clean"`, `"dag:fanout:3"`, `"bursty:diurnal:60"`,
//!   `"energy:drain"`, ...) spanning the disruption, workflow-DAG,
//!   bursty-arrival and energy families, with typed parse errors and a
//!   `Display` round trip (the scenario-side mirror of `PolicySpec`).
//!
//! ```
//! use mrsch_eval::{EvalPlan, PolicySpec};
//! use mrsch::prelude::*;
//!
//! let scenario = Scenario::new(
//!     "clean",
//!     JobSource::Theta(ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(15) }),
//!     WorkloadSpec::s1(),
//!     SimParams::new(4, true),
//! );
//! let grid = EvalPlan::new(
//!     SystemConfig::two_resource(16, 8),
//!     vec![PolicySpec::Fcfs, PolicySpec::Ga],
//!     vec![scenario],
//!     vec![1, 2],
//! )
//! .run();
//! assert_eq!(grid.cells.len(), 4);
//! let fcfs = grid.aggregate("fcfs", "clean").unwrap();
//! assert_eq!(fcfs.seeds, 2);
//! ```

pub mod cache;
pub mod harness;
pub mod registry;
pub mod scenario_registry;
pub mod scenarios;
pub mod table;

pub use cache::{cache_key, is_cacheable, CacheKey, KeyHasher, PolicyCache};
pub use harness::{
    default_training_curriculum, parse_seed_spec, Aggregate, AggregateRow, EvalCell, EvalGrid,
    EvalPlan,
};
pub use registry::{trained_mrsch, BuildContext, MrschSpec, PolicySpec};
pub use scenario_registry::{build_scenarios, ScenarioParseError, ScenarioSpec};
#[allow(deprecated)]
pub use scenarios::{named_scenario, named_scenarios, scenario_names};
