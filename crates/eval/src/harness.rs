//! The scenario evaluation harness: a declarative [`EvalPlan`]
//! (`policies × scenarios × seeds`) executed as a worker-threaded grid
//! with a deterministic merge, yielding an [`EvalGrid`] of per-cell
//! [`SimReport`]s plus multi-seed [`Aggregate`]s and one shared
//! CSV/table emitter.
//!
//! # Determinism
//!
//! Every cell is a pure function of `(policy spec, scenario, seed)`:
//! evaluation episodes are materialized through
//! [`Scenario::materialize`] with a seed-derived episode index,
//! learnable policies are trained from a seed-derived context, and
//! stateless/seeded policies are reused across cells only through
//! [`mrsim::Policy::reset`] (which restores their initial state
//! bit-exactly). Worker count is therefore a wall-clock knob, never a
//! semantics knob — the same guarantee the training engine makes for
//! rollout workers.

use crate::cache::PolicyCache;
use crate::registry::{BuildContext, PolicySpec};
use crate::table;
use mrsch::prelude::*;
use mrsch_workload::scenario::mix_seed;
use std::collections::HashMap;
use std::sync::Arc;

/// Salt decorrelating a grid cell's *evaluation* episode from the
/// training episodes (`0..n`) materialized from the same scenario.
const EVAL_EPISODE_SALT: u64 = 0xE7A1_0001;

/// Salt decorrelating the default training stream from the evaluation
/// stream of the same scenario.
const TRAIN_SCENARIO_SALT: u64 = 0x7121_0002;

/// Salt deriving the (grid-seed-independent) build seed of reusable
/// non-learnable policies.
const POLICY_BUILD_SALT: u64 = 0xB01D_0003;

/// The default training curriculum of a scenario: one phase of the
/// scenario itself (seed-shifted so training episodes never coincide
/// with evaluation episodes), for `episodes` episodes. Plans use this
/// for learnable policies when no explicit curriculum is attached.
pub fn default_training_curriculum(scenario: &Scenario, episodes: usize) -> Curriculum {
    let mut train = scenario.clone();
    train.name = format!("{}-train", scenario.name);
    train.seed = mix_seed(scenario.seed, TRAIN_SCENARIO_SALT);
    Curriculum::new().phase(CurriculumPhase::new(train, episodes.max(1)))
}

/// Parse a seed specification: either a half-open range `a..b` or a
/// comma-separated list (`0..4` → `[0, 1, 2, 3]`; `1,5,9` → `[1, 5, 9]`).
pub fn parse_seed_spec(s: &str) -> Result<Vec<u64>, String> {
    let s = s.trim();
    if let Some((a, b)) = s.split_once("..") {
        let lo: u64 = a.trim().parse().map_err(|_| format!("bad seed range start '{a}'"))?;
        let hi: u64 = b.trim().parse().map_err(|_| format!("bad seed range end '{b}'"))?;
        if hi <= lo {
            return Err(format!("empty seed range '{s}'"));
        }
        return Ok((lo..hi).collect());
    }
    let seeds: Result<Vec<u64>, _> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| p.trim().parse::<u64>().map_err(|_| format!("bad seed '{p}'")))
        .collect();
    let seeds = seeds?;
    if seeds.is_empty() {
        return Err("no seeds given".into());
    }
    Ok(seeds)
}

/// A declarative evaluation grid: run every policy on every scenario
/// under every seed.
#[derive(Clone, Debug)]
pub struct EvalPlan {
    /// Base (unextended) system; each scenario's workload spec resolves
    /// its own system from this (e.g. adding a third resource).
    pub base_system: SystemConfig,
    /// The policies to evaluate (names must be unique).
    pub policies: Vec<PolicySpec>,
    /// The scenarios to evaluate on (names must be unique).
    pub scenarios: Vec<Scenario>,
    /// The seeds of the replication axis.
    pub seeds: Vec<u64>,
    trainer: TrainerConfig,
    train_episodes: usize,
    scenario_train: Vec<Option<Curriculum>>,
    policy_train: Vec<Option<Curriculum>>,
    workers: usize,
    dfp_config: Option<DfpConfig>,
    policy_cache: Option<Arc<PolicyCache>>,
}

impl EvalPlan {
    /// A plan over the full grid `policies × scenarios × seeds`.
    ///
    /// # Panics
    /// Panics on an empty axis or duplicate policy/scenario names —
    /// names are the grid's coordinates. Duplicate *seeds* are allowed
    /// on purpose: running the same seed twice is the harness-level
    /// determinism probe (`multi_seed` pins std == 0 this way); user
    /// entry points like the CLI reject them instead, where they would
    /// silently double-count a replication.
    pub fn new(
        base_system: SystemConfig,
        policies: Vec<PolicySpec>,
        scenarios: Vec<Scenario>,
        seeds: Vec<u64>,
    ) -> Self {
        assert!(!policies.is_empty(), "EvalPlan needs at least one policy");
        assert!(!scenarios.is_empty(), "EvalPlan needs at least one scenario");
        assert!(!seeds.is_empty(), "EvalPlan needs at least one seed");
        let mut names: Vec<String> = policies.iter().map(|p| p.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), policies.len(), "duplicate policy names in plan");
        let mut snames: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        snames.sort();
        snames.dedup();
        assert_eq!(snames.len(), scenarios.len(), "duplicate scenario names in plan");
        let ns = scenarios.len();
        let np = policies.len();
        Self {
            base_system,
            policies,
            scenarios,
            seeds,
            trainer: TrainerConfig::default(),
            train_episodes: 4,
            scenario_train: vec![None; ns],
            policy_train: vec![None; np],
            workers: 0,
            dfp_config: None,
            policy_cache: None,
        }
    }

    /// Engine knobs for learnable-policy training (rollout workers,
    /// round size, gradient steps per episode).
    pub fn trainer(mut self, cfg: TrainerConfig) -> Self {
        self.trainer = cfg;
        self
    }

    /// Episodes of the default (scenario-derived) training curriculum.
    pub fn train_episodes(mut self, n: usize) -> Self {
        self.train_episodes = n.max(1);
        self
    }

    /// Attach an explicit training curriculum to scenario `idx`
    /// (learnable policies evaluated on that scenario train on it
    /// instead of the scenario's own default stream).
    pub fn scenario_training(mut self, idx: usize, curriculum: Curriculum) -> Self {
        self.scenario_train[idx] = Some(curriculum);
        self
    }

    /// Attach an explicit training curriculum to policy `idx` — the
    /// strongest override (e.g. a clean-trained vs a hardened MRSch in
    /// one plan).
    pub fn policy_training(mut self, idx: usize, curriculum: Curriculum) -> Self {
        self.policy_train[idx] = Some(curriculum);
        self
    }

    /// Grid worker threads (`0` = auto: one per cell up to the
    /// available parallelism). Never changes results, only wall-clock.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Architecture override for MRSch policies (tiny networks in
    /// tests).
    pub fn dfp_config(mut self, cfg: DfpConfig) -> Self {
        self.dfp_config = Some(cfg);
        self
    }

    /// Consult (and fill) a content-addressed trained-policy cache for
    /// learnable cells: a hit restores the cached weights instead of
    /// training, bit-identically to a fresh train. Share the `Arc` to
    /// read the hit/miss counters after [`EvalPlan::run`].
    pub fn policy_cache(mut self, cache: Arc<PolicyCache>) -> Self {
        self.policy_cache = Some(cache);
        self
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.policies.len() * self.scenarios.len() * self.seeds.len()
    }

    /// Execute the full grid and collect every cell, in
    /// `(policy, scenario, seed)`-major order regardless of scheduling.
    pub fn run(&self) -> EvalGrid {
        let np = self.policies.len();
        let ns = self.scenarios.len();
        let nk = self.seeds.len();
        let n = np * ns * nk;
        let workers = if self.workers == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.workers
        }
        .clamp(1, n);
        let mut slots: Vec<Option<EvalCell>> = (0..n).map(|_| None).collect();
        if workers == 1 {
            let mut cache = HashMap::new();
            let mut sims = HashMap::new();
            for (idx, slot) in slots.iter_mut().enumerate() {
                *slot = Some(self.run_cell(idx, ns, nk, &mut cache, &mut sims));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut cache = HashMap::new();
                            let mut sims = HashMap::new();
                            let mut out = Vec::new();
                            let mut idx = w;
                            while idx < n {
                                out.push((idx, self.run_cell(idx, ns, nk, &mut cache, &mut sims)));
                                idx += workers;
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    for (idx, cell) in h.join().expect("grid worker panicked") {
                        slots[idx] = Some(cell);
                    }
                }
            });
        }
        EvalGrid { cells: slots.into_iter().map(|c| c.expect("every cell ran")).collect() }
    }

    /// Run one grid cell. `cache` holds this worker's reusable
    /// non-learnable policy instances keyed by `(policy, scenario)`;
    /// [`mrsim::Policy::reset`] guarantees a cached instance behaves
    /// exactly like a fresh one, so which worker owns which cell never
    /// shows in the results. `sims` holds this worker's simulators, one
    /// per scenario (scenarios fix the resolved system, so the pools
    /// match): later cells swap their episode in via
    /// [`Simulator::load`] instead of rebuilding the simulator — the
    /// same reuse the training engine's rollout workers do, with the
    /// same bit-identical-to-fresh guarantee.
    fn run_cell(
        &self,
        idx: usize,
        ns: usize,
        nk: usize,
        cache: &mut HashMap<(usize, usize), Box<dyn Policy + Send>>,
        sims: &mut HashMap<usize, Simulator>,
    ) -> EvalCell {
        let pi = idx / (ns * nk);
        let si = (idx / nk) % ns;
        let seed = self.seeds[idx % nk];
        let scenario = &self.scenarios[si];
        let spec = &self.policies[pi];
        let system = scenario.spec.system_for(&self.base_system);
        let episode = scenario.materialize(&system, mix_seed(seed, EVAL_EPISODE_SALT));
        let cp_bound = episode.makespan_lower_bound(&system);
        let report = if spec.is_learnable() {
            let fallback;
            let curriculum = match self.policy_train[pi]
                .as_ref()
                .or(self.scenario_train[si].as_ref())
            {
                Some(c) => c,
                None => {
                    fallback = default_training_curriculum(scenario, self.train_episodes);
                    &fallback
                }
            };
            for phase in curriculum.phases() {
                assert_eq!(
                    phase.scenario.params.window, scenario.params.window,
                    "training and evaluation windows must match (policy '{}', scenario '{}')",
                    spec.name(), scenario.name
                );
            }
            let ctx = BuildContext {
                system: &system,
                params: scenario.params,
                seed,
                train: Some(curriculum),
                trainer: self.trainer.clone(),
                dfp_config: self.dfp_config.as_ref(),
            };
            let mut policy = spec.build_cached(&ctx, self.policy_cache.as_deref());
            run_episode(sims, si, &system, &episode, policy.as_mut())
        } else if spec.reuses_instances() {
            // Reusable policies are built with a grid-seed-independent
            // seed so a cached instance (reset between cells) and a
            // fresh one are interchangeable.
            let ctx = BuildContext::new(
                &system,
                scenario.params,
                mix_seed(scenario.seed, POLICY_BUILD_SALT ^ pi as u64),
            );
            let policy = cache.entry((pi, si)).or_insert_with(|| spec.build(&ctx));
            policy.reset();
            run_episode(sims, si, &system, &episode, policy.as_mut())
        } else {
            // Non-reusable specs (`ga:reseed`) are rebuilt every cell
            // with the grid seed itself, so their internal randomness
            // varies across the seed axis instead of being frozen at
            // build time.
            let ctx = BuildContext::new(&system, scenario.params, seed);
            let mut policy = spec.build(&ctx);
            run_episode(sims, si, &system, &episode, policy.as_mut())
        };
        EvalCell { policy: spec.name(), scenario: scenario.name.clone(), seed, cp_bound, report }
    }
}

/// Run one materialized episode under a policy, reusing the worker's
/// per-scenario simulator when one exists ([`EpisodeSpec::install`]
/// swaps the trace, parameters, dependency graph and injected events
/// via [`Simulator::load`], bit-identically to a fresh construction —
/// the ROADMAP "grid cells rebuild the simulator per cell" item).
fn run_episode(
    sims: &mut HashMap<usize, Simulator>,
    si: usize,
    system: &SystemConfig,
    episode: &EpisodeSpec,
    policy: &mut dyn Policy,
) -> SimReport {
    use std::collections::hash_map::Entry;
    let sim = match sims.entry(si) {
        Entry::Occupied(slot) => {
            let sim = slot.into_mut();
            episode.install(sim).expect("scenario episode must fit the system");
            sim
        }
        Entry::Vacant(slot) => slot.insert(
            episode.simulator(system.clone()).expect("scenario episode must fit the system"),
        ),
    };
    sim.run(policy)
}

/// One `(policy, scenario, seed)` result.
#[derive(Clone, Debug)]
pub struct EvalCell {
    /// Policy name ([`PolicySpec::name`]).
    pub policy: String,
    /// Scenario name.
    pub scenario: String,
    /// Grid seed.
    pub seed: u64,
    /// Policy-independent makespan lower bound of this cell's episode
    /// ([`EpisodeSpec::makespan_lower_bound`]): critical path ∨ resource
    /// area. The regret baseline for DAG scenarios (exact for
    /// cancellation-free episodes).
    pub cp_bound: u64,
    /// The full simulator report (disruption counters included).
    pub report: SimReport,
}

impl EvalCell {
    /// Relative makespan regret against the critical-path/area lower
    /// bound: `makespan / bound − 1` (0 when the bound is degenerate).
    pub fn cp_regret(&self) -> f64 {
        if self.cp_bound == 0 {
            return 0.0;
        }
        self.report.makespan as f64 / self.cp_bound as f64 - 1.0
    }
}

/// Aggregated metric: mean ± population standard deviation over seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aggregate {
    /// Mean over seeds.
    pub mean: f64,
    /// Population standard deviation over seeds.
    pub std: f64,
}

impl Aggregate {
    /// Aggregate a sample.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self { mean: 0.0, std: 0.0 };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Self { mean, std: var.sqrt() }
    }
}

/// Seed-aggregated metrics of one `(policy, scenario)` pair.
#[derive(Clone, Debug)]
pub struct AggregateRow {
    /// Policy name.
    pub policy: String,
    /// Scenario name.
    pub scenario: String,
    /// Seeds aggregated.
    pub seeds: usize,
    /// Utilization of resource 0 (nodes).
    pub node_util: Aggregate,
    /// Utilization of resource 1 (burst buffer; 0 when absent).
    pub bb_util: Aggregate,
    /// Average job wait, hours.
    pub avg_wait_h: Aggregate,
    /// Average bounded slowdown.
    pub avg_slowdown: Aggregate,
    /// Makespan, seconds.
    pub makespan_s: Aggregate,
    /// Jobs cancelled (disruptions).
    pub cancelled: Aggregate,
    /// Jobs killed at their walltime (disruptions).
    pub killed: Aggregate,
    /// Total energy drawn, kWh (0 when the scenario carries no power
    /// model).
    pub energy_kwh: Aggregate,
    /// Relative makespan regret against the per-cell critical-path/area
    /// lower bound ([`EvalCell::cp_regret`]).
    pub cp_regret: Aggregate,
}

/// Every cell of an executed [`EvalPlan`], with aggregation and CSV
/// emission — the single result type all retrofitted drivers share.
#[derive(Clone, Debug, Default)]
pub struct EvalGrid {
    /// All cells in `(policy, scenario, seed)`-major plan order.
    pub cells: Vec<EvalCell>,
}

impl EvalGrid {
    /// Merge several grids (e.g. per-seed plans run separately) into
    /// one, concatenating cells in order.
    pub fn merge(grids: impl IntoIterator<Item = EvalGrid>) -> EvalGrid {
        EvalGrid { cells: grids.into_iter().flat_map(|g| g.cells).collect() }
    }

    /// Policy names in first-appearance order.
    pub fn policies(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.policy) {
                out.push(c.policy.clone());
            }
        }
        out
    }

    /// Scenario names in first-appearance order.
    pub fn scenarios(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.scenario) {
                out.push(c.scenario.clone());
            }
        }
        out
    }

    /// Look up one cell.
    pub fn cell(&self, policy: &str, scenario: &str, seed: u64) -> Option<&EvalCell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.scenario == scenario && c.seed == seed)
    }

    /// Seed-aggregate one `(policy, scenario)` pair (`None` when no
    /// cell matches).
    pub fn aggregate(&self, policy: &str, scenario: &str) -> Option<AggregateRow> {
        let cells: Vec<&EvalCell> = self
            .cells
            .iter()
            .filter(|c| c.policy == policy && c.scenario == scenario)
            .collect();
        if cells.is_empty() {
            return None;
        }
        let pick = |f: &dyn Fn(&SimReport) -> f64| -> Aggregate {
            Aggregate::of(&cells.iter().map(|c| f(&c.report)).collect::<Vec<f64>>())
        };
        Some(AggregateRow {
            policy: policy.to_string(),
            scenario: scenario.to_string(),
            seeds: cells.len(),
            node_util: pick(&|r| r.resource_utilization[0]),
            bb_util: pick(&|r| r.resource_utilization.get(1).copied().unwrap_or(0.0)),
            avg_wait_h: pick(&|r| r.avg_wait_hours()),
            avg_slowdown: pick(&|r| r.avg_slowdown),
            makespan_s: pick(&|r| r.makespan as f64),
            cancelled: pick(&|r| r.jobs_cancelled as f64),
            killed: pick(&|r| r.jobs_killed as f64),
            energy_kwh: pick(&|r| r.energy_kwh()),
            cp_regret: Aggregate::of(
                &cells.iter().map(|c| c.cp_regret()).collect::<Vec<f64>>(),
            ),
        })
    }

    /// Seed-aggregated rows for every `(policy, scenario)` pair, in
    /// first-appearance order.
    pub fn aggregate_rows(&self) -> Vec<AggregateRow> {
        let mut out = Vec::new();
        for scenario in self.scenarios() {
            for policy in self.policies() {
                if let Some(row) = self.aggregate(&policy, &scenario) {
                    out.push(row);
                }
            }
        }
        out
    }

    /// Per-cell CSV (one row per grid cell).
    pub fn cell_csv(&self) -> (Vec<&'static str>, Vec<Vec<String>>) {
        let header = vec![
            "policy",
            "scenario",
            "seed",
            "node_util",
            "bb_util",
            "avg_wait_h",
            "avg_slowdown",
            "makespan_s",
            "completed",
            "cancelled",
            "killed",
            "unfinished",
            "cp_bound_s",
            "cp_regret",
            "energy_kwh",
        ];
        let rows = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.policy.clone(),
                    c.scenario.clone(),
                    c.seed.to_string(),
                    table::f(c.report.resource_utilization[0]),
                    table::f(c.report.resource_utilization.get(1).copied().unwrap_or(0.0)),
                    table::f(c.report.avg_wait_hours()),
                    table::f(c.report.avg_slowdown),
                    c.report.makespan.to_string(),
                    c.report.jobs_completed.to_string(),
                    c.report.jobs_cancelled.to_string(),
                    c.report.jobs_killed.to_string(),
                    c.report.jobs_unfinished.to_string(),
                    c.cp_bound.to_string(),
                    table::f(c.cp_regret()),
                    table::f(c.report.energy_kwh()),
                ]
            })
            .collect();
        (header, rows)
    }

    /// Seed-aggregated CSV (one row per `(policy, scenario)` with
    /// mean ± std columns).
    pub fn aggregate_csv(&self) -> (Vec<&'static str>, Vec<Vec<String>>) {
        let header = vec![
            "policy",
            "scenario",
            "seeds",
            "node_util_mean",
            "node_util_std",
            "bb_util_mean",
            "bb_util_std",
            "avg_wait_h_mean",
            "avg_wait_h_std",
            "avg_slowdown_mean",
            "avg_slowdown_std",
            "makespan_s_mean",
            "makespan_s_std",
            "cp_regret_mean",
            "cp_regret_std",
            "energy_kwh_mean",
            "energy_kwh_std",
        ];
        let rows = self
            .aggregate_rows()
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    r.scenario.clone(),
                    r.seeds.to_string(),
                    table::f(r.node_util.mean),
                    table::f(r.node_util.std),
                    table::f(r.bb_util.mean),
                    table::f(r.bb_util.std),
                    table::f(r.avg_wait_h.mean),
                    table::f(r.avg_wait_h.std),
                    table::f(r.avg_slowdown.mean),
                    table::f(r.avg_slowdown.std),
                    table::f(r.makespan_s.mean),
                    table::f(r.makespan_s.std),
                    table::f(r.cp_regret.mean),
                    table::f(r.cp_regret.std),
                    table::f(r.energy_kwh.mean),
                    table::f(r.energy_kwh.std),
                ]
            })
            .collect();
        (header, rows)
    }

    /// Human-readable aggregate table.
    pub fn render_aggregate_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<16} {:>5} {:>16} {:>16} {:>16} {:>16}\n",
            "policy", "scenario", "seeds", "node util", "bb util", "wait (h)", "slowdown"
        ));
        for r in self.aggregate_rows() {
            let fmt = |a: &Aggregate| format!("{:.3} ± {:.3}", a.mean, a.std);
            out.push_str(&format!(
                "{:<16} {:<16} {:>5} {:>16} {:>16} {:>16} {:>16}\n",
                r.policy,
                r.scenario,
                r.seeds,
                fmt(&r.node_util),
                fmt(&r.bb_util),
                fmt(&r.avg_wait_h),
                fmt(&r.avg_slowdown),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario(name: &str, jobs: usize, seed: u64) -> Scenario {
        Scenario::new(
            name,
            JobSource::Theta(ThetaConfig {
                machine_nodes: 16,
                mean_interarrival: 120.0,
                ..ThetaConfig::scaled(jobs)
            }),
            WorkloadSpec::s1(),
            SimParams::new(4, true),
        )
        .with_seed(seed)
    }

    fn tiny_plan(policies: Vec<PolicySpec>, seeds: Vec<u64>) -> EvalPlan {
        EvalPlan::new(
            SystemConfig::two_resource(16, 8),
            policies,
            vec![tiny_scenario("clean", 18, 5)],
            seeds,
        )
    }

    #[test]
    fn grid_covers_every_cell_in_plan_order() {
        let plan = tiny_plan(
            vec![PolicySpec::Fcfs, PolicySpec::parse("list:lpt").unwrap()],
            vec![1, 2],
        );
        assert_eq!(plan.cell_count(), 4);
        let grid = plan.run();
        assert_eq!(grid.cells.len(), 4);
        let coords: Vec<(String, u64)> =
            grid.cells.iter().map(|c| (c.policy.clone(), c.seed)).collect();
        assert_eq!(
            coords,
            vec![
                ("fcfs".into(), 1),
                ("fcfs".into(), 2),
                ("list:lpt".into(), 1),
                ("list:lpt".into(), 2)
            ]
        );
        for c in &grid.cells {
            assert!(c.report.jobs_completed > 0, "{}/{}", c.policy, c.seed);
        }
    }

    #[test]
    fn worker_count_never_changes_results() {
        let mk = || {
            tiny_plan(
                vec![PolicySpec::Fcfs, PolicySpec::Ga, PolicySpec::parse("list:sjf").unwrap()],
                vec![3, 4],
            )
        };
        let serial = mk().workers(1).run();
        let parallel = mk().workers(4).run();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.report, b.report, "{} seed {} drifted", a.policy, a.seed);
        }
    }

    #[test]
    fn simulator_reuse_matches_fresh_construction() {
        // With one worker, seeds 2 and 3 run on a simulator that the
        // seed-1 cell already used (swapped via `Simulator::load`).
        // Each single-seed plan builds its simulator fresh — every cell
        // must agree bit-exactly.
        let reused = tiny_plan(vec![PolicySpec::Fcfs], vec![1, 2, 3]).workers(1).run();
        let fresh = EvalGrid::merge(
            [1u64, 2, 3]
                .map(|s| tiny_plan(vec![PolicySpec::Fcfs], vec![s]).workers(1).run()),
        );
        assert_eq!(reused.cells.len(), fresh.cells.len());
        for (a, b) in reused.cells.iter().zip(&fresh.cells) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.report, b.report, "seed {} drifted under simulator reuse", a.seed);
        }
    }

    #[test]
    fn cached_instances_match_fresh_instances() {
        // Two seeds share one cached GA instance per worker; serially
        // the second cell runs on a reset instance. Rerunning the plan
        // (fresh instances) must reproduce both cells bit-identically.
        let plan = tiny_plan(vec![PolicySpec::Ga], vec![9, 10]);
        let once = plan.clone().workers(1).run();
        let twice = plan.workers(1).run();
        for (a, b) in once.cells.iter().zip(&twice.cells) {
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn ga_reseed_derives_its_rng_from_the_grid_seed() {
        // `ga:reseed` must behave exactly like a GA instance built
        // fresh per cell with the grid seed — recompute one cell by
        // hand through the harness's own episode derivation.
        let plan = tiny_plan(
            vec![PolicySpec::Ga, PolicySpec::parse("ga:reseed").unwrap()],
            vec![21, 22],
        );
        let grid = plan.clone().workers(1).run();
        let reran = plan.workers(2).run();
        for (a, b) in grid.cells.iter().zip(&reran.cells) {
            assert_eq!(a.report, b.report, "{} seed {} drifted", a.policy, a.seed);
        }
        let scenario = tiny_scenario("clean", 18, 5);
        let base = SystemConfig::two_resource(16, 8);
        let system = scenario.spec.system_for(&base);
        for seed in [21u64, 22] {
            let episode = scenario.materialize(&system, mix_seed(seed, EVAL_EPISODE_SALT));
            let ctx = BuildContext::new(&system, scenario.params, seed);
            let mut policy = PolicySpec::GaReseed.build(&ctx);
            let mut sims = HashMap::new();
            let expected = run_episode(&mut sims, 0, &system, &episode, policy.as_mut());
            let cell = grid.cell("ga:reseed", "clean", seed).expect("cell exists");
            assert_eq!(cell.report, expected, "seed {seed} not derived from grid seed");
        }
        // Plain `ga` freezes its RNG at build time; the reseeded
        // variant draws it per cell, so the two must not collapse onto
        // each other for every seed.
        let differs = [21u64, 22].iter().any(|&s| {
            grid.cell("ga", "clean", s).unwrap().report
                != grid.cell("ga:reseed", "clean", s).unwrap().report
        });
        assert!(differs, "ga:reseed reproduced ga on every seed");
    }

    #[test]
    fn aggregates_and_csv_cover_the_grid() {
        let grid = tiny_plan(vec![PolicySpec::Fcfs], vec![1, 2, 3]).run();
        let row = grid.aggregate("fcfs", "clean").expect("aggregate exists");
        assert_eq!(row.seeds, 3);
        assert!(row.node_util.mean > 0.0);
        assert!(row.node_util.std >= 0.0);
        let (header, rows) = grid.cell_csv();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), header.len());
        let (aheader, arows) = grid.aggregate_csv();
        assert_eq!(arows.len(), 1);
        assert_eq!(arows[0].len(), aheader.len());
        assert!(grid.render_aggregate_table().contains("fcfs"));
    }

    fn tiny_dfp_config() -> DfpConfig {
        let mut cfg = DfpConfig::scaled(1, 2, 4);
        cfg.state_hidden = vec![32];
        cfg.state_embed = 16;
        cfg.io_hidden = 16;
        cfg.io_embed = 8;
        cfg.stream_hidden = 32;
        cfg.batch_size = 8;
        cfg
    }

    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mrsch-harness-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_hit_replays_bit_identical_to_cache_miss() {
        // Run the same learnable plan three times: uncached, cold cache
        // (misses + stores), warm cache (hits only). All three grids
        // must agree bit-exactly on every report — the tentpole cache
        // contract.
        let dir = temp_cache_dir("bitident");
        let mk = || {
            tiny_plan(
                vec![PolicySpec::mrsch(), PolicySpec::ScalarRl],
                vec![1, 2],
            )
            .train_episodes(2)
            .dfp_config(tiny_dfp_config())
            .workers(1)
        };
        let uncached = mk().run();
        let cold_cache = Arc::new(PolicyCache::new(&dir));
        let cold = mk().policy_cache(Arc::clone(&cold_cache)).run();
        assert_eq!(cold_cache.hits(), 0, "cold cache must not hit");
        assert_eq!(cold_cache.misses(), 4, "every learnable cell trains once");
        assert_eq!(cold_cache.stores(), 4);
        let warm_cache = Arc::new(PolicyCache::new(&dir));
        let warm = mk().policy_cache(Arc::clone(&warm_cache)).run();
        assert_eq!(warm_cache.misses(), 0, "warm cache must never retrain");
        assert_eq!(warm_cache.hits(), 4);
        for ((u, c), w) in uncached.cells.iter().zip(&cold.cells).zip(&warm.cells) {
            assert_eq!(u.report, c.report, "{}/{}: cold-cache drift", u.policy, u.seed);
            assert_eq!(u.report, w.report, "{}/{}: warm-cache drift", u.policy, u.seed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_keys_separate_seeds_and_policies() {
        // Two seeds × two learnable policies must produce four distinct
        // entries — and a second scenario seed must not reuse them.
        let dir = temp_cache_dir("separate");
        let cache = Arc::new(PolicyCache::new(&dir));
        tiny_plan(vec![PolicySpec::mrsch(), PolicySpec::ScalarRl], vec![1, 2])
            .train_episodes(1)
            .dfp_config(tiny_dfp_config())
            .workers(1)
            .policy_cache(Arc::clone(&cache))
            .run();
        assert_eq!(cache.stores(), 4);
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 4, "each (policy, seed) cell gets its own entry");
        // A different scenario seed changes the training curriculum and
        // therefore the keys: everything misses again.
        let cache2 = Arc::new(PolicyCache::new(&dir));
        EvalPlan::new(
            SystemConfig::two_resource(16, 8),
            vec![PolicySpec::mrsch(), PolicySpec::ScalarRl],
            vec![tiny_scenario("clean", 18, 6)],
            vec![1, 2],
        )
        .train_episodes(1)
        .dfp_config(tiny_dfp_config())
        .workers(1)
        .policy_cache(Arc::clone(&cache2))
        .run();
        assert_eq!(cache2.hits(), 0, "different scenario seed must not hit");
        assert_eq!(cache2.misses(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_specs_parse() {
        assert_eq!(parse_seed_spec("0..4").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_seed_spec("1,5, 9").unwrap(), vec![1, 5, 9]);
        assert_eq!(parse_seed_spec("7").unwrap(), vec![7]);
        assert!(parse_seed_spec("4..4").is_err());
        assert!(parse_seed_spec("x").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate policy names")]
    fn duplicate_policies_rejected() {
        let _ = tiny_plan(vec![PolicySpec::Fcfs, PolicySpec::Fcfs], vec![1]);
    }

    #[test]
    fn default_training_curriculum_decorrelates_from_eval() {
        let scenario = tiny_scenario("clean", 12, 3);
        let cur = default_training_curriculum(&scenario, 3);
        assert_eq!(cur.total_episodes(), 3);
        let system = SystemConfig::two_resource(16, 8);
        let train_ep = cur.phases()[0].scenario.materialize(&system, 0);
        let eval_ep = scenario.materialize(&system, mix_seed(0, EVAL_EPISODE_SALT));
        assert_ne!(train_ep.jobs, eval_ep.jobs, "train and eval streams must differ");
    }
}
