//! Content-addressed trained-policy cache: never train the same agent
//! twice.
//!
//! Every learnable grid cell used to retrain its policy per
//! `(policy, scenario, seed)` — the dominant cost of wide grids and
//! repeated CI runs. This module gives [`crate::harness::EvalPlan`] a
//! disk cache keyed by a **content hash of everything that determines
//! the trained weights**: the (normalized) [`PolicySpec`], the resolved
//! training [`Curriculum`], the grid seed, the (normalized)
//! [`TrainerConfig`], any [`DfpConfig`] override, and the resolved
//! system/simulator parameters. Two cells that would train bit-identical
//! agents share one cache entry; any config change produces a new key.
//!
//! # Hashing
//!
//! The vendored serde is a no-op, so there is no generic serializer to
//! lean on. Instead the key hasher follows the repo's hand-rolled writer
//! pattern (`mrsch_bench::report`): each component is rendered through
//! its *derived* `Debug` representation — which recursively covers every
//! field, so adding a field to any config type automatically changes the
//! key — and folded, with a field label, into a 128-bit FNV-1a hash.
//! Rust's float `Debug` output is round-trip exact, so distinct configs
//! cannot collide by formatting.
//!
//! # Normalization
//!
//! Fields that provably do **not** affect trained weights are stripped
//! before hashing so they cannot fragment the cache:
//! * `TrainerConfig::workers` — worker count is a wall-clock knob
//!   (pinned bit-identical by the engine's tests);
//! * a lockstep (`max_staleness = 0`) pipeline — pinned bit-identical to
//!   the barrier loop;
//! * an MRSch display tag — naming only.
//!
//! Bounded-staleness training (`max_staleness > 0`) is timing-dependent,
//! so those results are never cached at all ([`is_cacheable`]).
//!
//! # Entry format
//!
//! `<dir>/<32-hex-digit-key>.bin`, an `mrsch_snapshot` frame (magic
//! `MRPC`, version, length framing, trailing FNV checksum) whose payload
//! is the full 128-bit key (so a hash-named file renamed by hand is
//! still detected) followed by the policy's `mrsch_nn::checkpoint` blob
//! — which carries its own magic and parameter-shape fingerprint.
//! Entries written before the shared codec (the unframed `MRPC1\n`
//! header format) are still read. Any validation failure is treated as
//! a miss: the cell retrains and overwrites the entry.

use mrsch::prelude::*;
use std::fmt::Debug;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::registry::PolicySpec;

/// Magic prefix of a legacy (pre-codec, unframed) cache entry file.
const LEGACY_ENTRY_MAGIC: &[u8; 6] = b"MRPC1\n";

/// Frame magic of the current cache entry format.
const ENTRY_MAGIC: [u8; 4] = *b"MRPC";

/// Entry format version. v1 was the unframed `MRPC1\n` header; v2 is
/// the first codec-framed version, so the frame versioning starts at 2.
const ENTRY_VERSION: u16 = 2;

/// Schema tag folded into every key: bump to invalidate all entries
/// when the key derivation or entry format changes.
const SCHEMA_TAG: &str = "mrsch-policy-cache/v1";

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit content key addressing one trained policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// 32-hex-digit file stem.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Incremental 128-bit FNV-1a over labeled `Debug`-rendered fields —
/// the hand-rolled canonical encoding standing in for the no-op vendored
/// serde.
#[derive(Clone, Debug)]
pub struct KeyHasher {
    hash: u128,
    scratch: String,
}

impl KeyHasher {
    /// A hasher seeded with the cache schema tag.
    pub fn new() -> Self {
        let mut h = Self { hash: FNV128_OFFSET, scratch: String::new() };
        h.update(SCHEMA_TAG.as_bytes());
        h
    }

    /// Fold raw bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u128;
            self.hash = self.hash.wrapping_mul(FNV128_PRIME);
        }
        // Length-prefix framing (trailer variant): two adjacent fields
        // cannot collide by moving bytes across their boundary.
        let len = bytes.len() as u64;
        for b in len.to_le_bytes() {
            self.hash ^= b as u128;
            self.hash = self.hash.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Fold one labeled field, rendered through `Debug`.
    pub fn field(&mut self, label: &str, value: &impl Debug) {
        self.update(label.as_bytes());
        self.scratch.clear();
        write!(self.scratch, "{value:?}").expect("writing to String cannot fail");
        let rendered = std::mem::take(&mut self.scratch);
        self.update(rendered.as_bytes());
        self.scratch = rendered;
    }

    /// The finished key.
    pub fn finish(self) -> CacheKey {
        CacheKey(self.hash)
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Can results trained under this config be cached at all? Bounded
/// staleness (`max_staleness > 0`) is timing-dependent — two runs of the
/// same key may produce different weights — so it is never cached.
pub fn is_cacheable(trainer: &TrainerConfig) -> bool {
    trainer.pipeline.is_none_or(|p| p.max_staleness == 0)
}

/// The content key of one trained policy. Covers everything the trained
/// weights depend on; normalizes everything they provably don't (see the
/// module docs).
pub fn cache_key(
    spec: &PolicySpec,
    system: &SystemConfig,
    params: SimParams,
    seed: u64,
    curriculum: &Curriculum,
    trainer: &TrainerConfig,
    dfp_config: Option<&DfpConfig>,
) -> CacheKey {
    let mut spec = spec.clone();
    if let PolicySpec::Mrsch(m) = &mut spec {
        m.tag = None;
    }
    let mut trainer = trainer.clone();
    trainer.workers = 1;
    if trainer.pipeline.is_some_and(|p| p.max_staleness == 0) {
        trainer.pipeline = None;
    }
    let mut h = KeyHasher::new();
    h.field("spec", &spec);
    h.field("system", system);
    h.field("params", &params);
    h.field("seed", &seed);
    h.field("curriculum", curriculum);
    h.field("trainer", &trainer);
    h.field("dfp_config", &dfp_config);
    h.finish()
}

/// A directory of content-addressed trained-policy checkpoints, with
/// hit/miss/store counters (atomics: the harness consults the cache from
/// its grid workers).
#[derive(Debug)]
pub struct PolicyCache {
    dir: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
    stores: AtomicUsize,
}

impl PolicyCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            stores: AtomicUsize::new(0),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path of `key`.
    pub fn path_for(&self, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{}.bin", key.hex()))
    }

    /// Read and validate the entry for `key`, returning its checkpoint
    /// payload. Does **not** touch the counters — a payload that later
    /// fails to load into the rebuilt policy must still count as a miss,
    /// so the caller records the outcome via [`PolicyCache::note_hit`] /
    /// [`PolicyCache::note_miss`] once it knows it.
    pub fn read(&self, key: CacheKey) -> Option<Vec<u8>> {
        let data = std::fs::read(self.path_for(key)).ok()?;
        // Entries written before the shared codec: unframed
        // `MRPC1\n` + 16-byte LE key + payload, no checksum.
        if data.starts_with(LEGACY_ENTRY_MAGIC) {
            let header_len = LEGACY_ENTRY_MAGIC.len() + 16;
            if data.len() < header_len {
                return None;
            }
            let mut stored = [0u8; 16];
            stored.copy_from_slice(&data[LEGACY_ENTRY_MAGIC.len()..header_len]);
            if u128::from_le_bytes(stored) != key.0 {
                return None;
            }
            return Some(data[header_len..].to_vec());
        }
        let (_version, payload) = mrsch_snapshot::unframe(ENTRY_MAGIC, &data).ok()?;
        let mut r = mrsch_snapshot::Reader::new(payload);
        let lo = r.get_u64().ok()?;
        let hi = r.get_u64().ok()?;
        if ((hi as u128) << 64 | lo as u128) != key.0 {
            return None;
        }
        Some(r.take(r.remaining()).ok()?.to_vec())
    }

    /// Write the entry for `key`. Best-effort: an unwritable cache
    /// degrades to always-miss instead of failing the run.
    pub fn store(&self, key: CacheKey, payload: &[u8]) {
        let mut w = mrsch_snapshot::Writer::with_capacity(16 + payload.len());
        w.put_u64(key.0 as u64);
        w.put_u64((key.0 >> 64) as u64);
        w.put_raw(payload);
        let data = mrsch_snapshot::frame(ENTRY_MAGIC, ENTRY_VERSION, &w.into_bytes());
        if std::fs::create_dir_all(&self.dir).is_ok()
            && std::fs::write(self.path_for(key), data).is_ok()
        {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a successful cache hit (entry read *and* loaded).
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a miss (no entry, or the entry failed validation/loading).
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses (= policies actually trained) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries written so far.
    pub fn stores(&self) -> usize {
        self.stores.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MrschSpec;

    fn temp_cache(tag: &str) -> PolicyCache {
        let dir = std::env::temp_dir()
            .join(format!("mrsch-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        PolicyCache::new(dir)
    }

    fn key_with(
        mutate: impl FnOnce(
            &mut PolicySpec,
            &mut SystemConfig,
            &mut SimParams,
            &mut u64,
            &mut Curriculum,
            &mut TrainerConfig,
        ),
    ) -> CacheKey {
        let mut spec = PolicySpec::mrsch();
        let mut system = SystemConfig::two_resource(16, 8);
        let mut params = SimParams::new(4, true);
        let mut seed = 7;
        let scenario = Scenario::new(
            "clean",
            JobSource::Theta(ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(10) }),
            WorkloadSpec::s1(),
            params,
        );
        let mut curriculum = Curriculum::new().phase(CurriculumPhase::new(scenario, 3));
        let mut trainer = TrainerConfig::default();
        mutate(&mut spec, &mut system, &mut params, &mut seed, &mut curriculum, &mut trainer);
        cache_key(&spec, &system, params, seed, &curriculum, &trainer, None)
    }

    #[test]
    fn every_config_field_changes_the_key() {
        let base = key_with(|_, _, _, _, _, _| {});
        assert_eq!(base, key_with(|_, _, _, _, _, _| {}), "key must be deterministic");
        let variants = [
            key_with(|spec, _, _, _, _, _| {
                *spec = PolicySpec::Mrsch(MrschSpec {
                    state_module: StateModuleKind::Cnn,
                    tag: None,
                })
            }),
            key_with(|spec, _, _, _, _, _| *spec = PolicySpec::ScalarRl),
            key_with(|_, system, _, _, _, _| *system = SystemConfig::two_resource(32, 8)),
            key_with(|_, _, params, _, _, _| *params = SimParams::new(8, true)),
            key_with(|_, _, _, seed, _, _| *seed = 8),
            key_with(|_, _, _, _, cur, _| {
                *cur = cur.clone().phase(CurriculumPhase::new(
                    Scenario::new(
                        "extra",
                        JobSource::Theta(ThetaConfig {
                            machine_nodes: 16,
                            ..ThetaConfig::scaled(10)
                        }),
                        WorkloadSpec::s1(),
                        SimParams::new(4, true),
                    ),
                    1,
                ))
            }),
            key_with(|_, _, _, _, _, tr| tr.round_size = 8),
            key_with(|_, _, _, _, _, tr| tr.batches_per_episode = 16),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} must change the key");
        }
        // And a DfpConfig override changes it too.
        let spec = PolicySpec::mrsch();
        let system = SystemConfig::two_resource(16, 8);
        let params = SimParams::new(4, true);
        let cur = Curriculum::new().phase(CurriculumPhase::new(
            Scenario::new(
                "clean",
                JobSource::Theta(ThetaConfig { machine_nodes: 16, ..ThetaConfig::scaled(10) }),
                WorkloadSpec::s1(),
                params,
            ),
            3,
        ));
        let trainer = TrainerConfig::default();
        let cfg = DfpConfig::scaled(1, 2, 4);
        let with_cfg = cache_key(&spec, &system, params, 7, &cur, &trainer, Some(&cfg));
        assert_ne!(base, with_cfg);
    }

    #[test]
    fn wall_clock_knobs_do_not_change_the_key() {
        let base = key_with(|_, _, _, _, _, _| {});
        // Worker count is proven bit-identical by the engine.
        assert_eq!(base, key_with(|_, _, _, _, _, tr| tr.workers = 4));
        // Lockstep pipelining is proven bit-identical to barrier mode.
        assert_eq!(
            base,
            key_with(|_, _, _, _, _, tr| tr.pipeline = Some(PipelineConfig::lockstep()))
        );
        // An MRSch display tag renames, it doesn't retrain.
        assert_eq!(
            base,
            key_with(|spec, _, _, _, _, _| *spec = PolicySpec::mrsch_tagged("renamed"))
        );
        // Bounded staleness is NOT cacheable at all.
        let trainer = TrainerConfig::default().pipeline(PipelineConfig::bounded_staleness(2));
        assert!(!is_cacheable(&trainer));
        assert!(is_cacheable(&TrainerConfig::default()));
        assert!(is_cacheable(
            &TrainerConfig::default().pipeline(PipelineConfig::lockstep())
        ));
    }

    #[test]
    fn entries_round_trip_and_validate() {
        let cache = temp_cache("roundtrip");
        let key = CacheKey(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        assert!(cache.read(key).is_none(), "empty cache must miss");
        cache.store(key, b"payload-bytes");
        assert_eq!(cache.read(key).as_deref(), Some(&b"payload-bytes"[..]));
        assert_eq!(cache.stores(), 1);
        // A renamed entry (key mismatch in the header) is rejected.
        let other = CacheKey(key.0 ^ 1);
        std::fs::copy(cache.path_for(key), cache.path_for(other)).unwrap();
        assert!(cache.read(other).is_none(), "renamed entry must be a miss");
        // A truncated legacy entry is rejected.
        std::fs::write(cache.path_for(key), b"MRPC1\nshort").unwrap();
        assert!(cache.read(key).is_none(), "corrupt entry must be a miss");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    /// An entry in the pre-codec on-disk layout (the exact `MRPC1\n`
    /// byte format, built by hand as a migration fixture) still reads.
    #[test]
    fn legacy_unframed_entry_still_reads() {
        let cache = temp_cache("legacy");
        let key = CacheKey(0xfeed_beef_0bad_cafe_1122_3344_5566_7788);
        let mut legacy = Vec::new();
        legacy.extend_from_slice(b"MRPC1\n");
        legacy.extend_from_slice(&key.0.to_le_bytes());
        legacy.extend_from_slice(b"legacy-checkpoint-payload");
        std::fs::create_dir_all(cache.dir()).unwrap();
        std::fs::write(cache.path_for(key), legacy).unwrap();
        assert_eq!(cache.read(key).as_deref(), Some(&b"legacy-checkpoint-payload"[..]));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    /// The framed format detects payload corruption the legacy header
    /// format could not: any flipped byte is a miss, not a bad load.
    #[test]
    fn corrupted_framed_entry_is_a_miss() {
        let cache = temp_cache("corrupt");
        let key = CacheKey(42);
        cache.store(key, b"precious-weights");
        let path = cache.path_for(key);
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 12; // inside the payload, before the checksum
        data[last] ^= 0x80;
        std::fs::write(&path, data).unwrap();
        assert!(cache.read(key).is_none(), "checksum catches the flip");
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
