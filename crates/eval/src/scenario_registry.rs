//! String-addressable scenario registry, mirroring the policy registry
//! ([`crate::registry`]): every evaluation scenario is addressed by a
//! spec string (`clean`, `dag:fanout:3`, `bursty:diurnal:60`,
//! `energy:drain`, ...) that parses into a typed [`ScenarioSpec`],
//! prints back canonically via `Display`, and materializes into a
//! [`Scenario`] with [`ScenarioSpec::build`].
//!
//! Three scenario families live behind the registry:
//!
//! * **disruption** (the legacy five) — `clean`, `cancel-heavy`,
//!   `overrun-heavy`, `drain`, `mixed`: seeded cancellations, walltime
//!   overruns and node drains layered on the caller's job source;
//! * **dag** — `dag:chain:L` / `dag:fanout:W`: workflow graphs overlaid
//!   on the materialized trace, so the scheduler only ever sees the
//!   ready frontier and the critical-path bound becomes the regret
//!   baseline;
//! * **bursty** — `bursty:diurnal:A` / `bursty:spike:B`: open
//!   Poisson arrival streams from the stress generator with sinusoidal
//!   or storm-modulated rates (duration-driven, so the per-episode job
//!   count is seed-dependent);
//! * **energy** — `energy:drain`: the drain disruption with a per-node
//!   power model attached, so reports carry energy splits and goal
//!   vectors can trade power against wait.
//!
//! Parameter suffixes are integers so that `parse` → `Display` round
//! trips exactly; bare family names (`dag:chain`) pick documented
//! defaults.

use std::error::Error;
use std::fmt;

use mrsch::prelude::*;
use mrsch_workload::scenario::mix_seed;
use mrsch_workload::{ArrivalProcess, StressConfig};
use mrsim::simulator::PowerModel;

/// Default fan-out width for `dag:fanout`.
pub const DEFAULT_FANOUT_WIDTH: usize = 3;
/// Default chain length for `dag:chain`.
pub const DEFAULT_CHAIN_LENGTH: usize = 4;
/// Default diurnal amplitude for `bursty:diurnal`, in percent.
pub const DEFAULT_DIURNAL_AMPLITUDE_PCT: u32 = 60;
/// Default storm rate multiplier for `bursty:spike`.
pub const DEFAULT_SPIKE_BOOST: u32 = 6;

/// A parsed, typed scenario address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioSpec {
    /// No disruptions.
    Clean,
    /// 20 % user cancellations + 10 % walltime overruns.
    CancelHeavy,
    /// 25 % overruns at 2× the estimate + 5 % cancels.
    OverrunHeavy,
    /// A 25 % node drain a third of the way into the trace.
    Drain,
    /// Cancels + overruns + the drain together.
    Mixed,
    /// Map-reduce workflows: root → `width` parallel tasks → join.
    DagFanout {
        /// Parallel middle tasks per workflow (≥ 1).
        width: usize,
    },
    /// Linear pipelines of `length` tasks each.
    DagChain {
        /// Tasks per workflow (≥ 2).
        length: usize,
    },
    /// Open arrival stream with sinusoidal (diurnal) rate modulation.
    BurstyDiurnal {
        /// Modulation amplitude in percent, `1..=99`.
        amplitude_pct: u32,
    },
    /// Open arrival stream with recurring FaaS-like request storms.
    BurstySpike {
        /// Rate multiplier inside the storm window (≥ 2).
        boost: u32,
    },
    /// The drain disruption with per-node power accounting attached.
    EnergyDrain,
}

/// Why a scenario spec string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioParseError {
    /// The family name matched nothing in the registry.
    UnknownScenario(String),
    /// The family was recognized but its parameter suffix was not.
    BadParameter {
        /// The full spec string as given.
        spec: String,
        /// What was wrong with the parameter.
        detail: String,
    },
    /// An empty spec (or empty list entry).
    Empty,
}

impl fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioParseError::UnknownScenario(name) => write!(
                f,
                "unknown scenario '{name}' (registered: {})",
                ScenarioSpec::registered()
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            ScenarioParseError::BadParameter { spec, detail } => {
                write!(f, "bad parameter in scenario '{spec}': {detail}")
            }
            ScenarioParseError::Empty => write!(f, "no scenarios given"),
        }
    }
}

impl Error for ScenarioParseError {}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScenarioSpec::Clean => write!(f, "clean"),
            ScenarioSpec::CancelHeavy => write!(f, "cancel-heavy"),
            ScenarioSpec::OverrunHeavy => write!(f, "overrun-heavy"),
            ScenarioSpec::Drain => write!(f, "drain"),
            ScenarioSpec::Mixed => write!(f, "mixed"),
            ScenarioSpec::DagFanout { width } => write!(f, "dag:fanout:{width}"),
            ScenarioSpec::DagChain { length } => write!(f, "dag:chain:{length}"),
            ScenarioSpec::BurstyDiurnal { amplitude_pct } => {
                write!(f, "bursty:diurnal:{amplitude_pct}")
            }
            ScenarioSpec::BurstySpike { boost } => write!(f, "bursty:spike:{boost}"),
            ScenarioSpec::EnergyDrain => write!(f, "energy:drain"),
        }
    }
}

impl ScenarioSpec {
    /// Every registered spec at its default parameters, in canonical
    /// order (the order grids iterate in).
    pub fn registered() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::Clean,
            ScenarioSpec::CancelHeavy,
            ScenarioSpec::OverrunHeavy,
            ScenarioSpec::Drain,
            ScenarioSpec::Mixed,
            ScenarioSpec::DagFanout { width: DEFAULT_FANOUT_WIDTH },
            ScenarioSpec::DagChain { length: DEFAULT_CHAIN_LENGTH },
            ScenarioSpec::BurstyDiurnal { amplitude_pct: DEFAULT_DIURNAL_AMPLITUDE_PCT },
            ScenarioSpec::BurstySpike { boost: DEFAULT_SPIKE_BOOST },
            ScenarioSpec::EnergyDrain,
        ]
    }

    /// The canonical spec string (`Display` as a `String`).
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// Parse one spec string. Underscores normalize to hyphens in
    /// family names; parameter suffixes are optional (`dag:chain` →
    /// `dag:chain:4`) and must be integers in the documented range.
    pub fn parse(spec: &str) -> Result<ScenarioSpec, ScenarioParseError> {
        let trimmed = spec.trim();
        if trimmed.is_empty() {
            return Err(ScenarioParseError::Empty);
        }
        let norm = trimmed.to_lowercase().replace('_', "-");
        let bad = |detail: String| ScenarioParseError::BadParameter {
            spec: trimmed.to_string(),
            detail,
        };
        let mut parts = norm.splitn(3, ':');
        let family = parts.next().unwrap_or("");
        let kind = parts.next();
        let param = parts.next();
        match (family, kind) {
            ("clean", None) => Ok(ScenarioSpec::Clean),
            ("cancel-heavy", None) => Ok(ScenarioSpec::CancelHeavy),
            ("overrun-heavy", None) => Ok(ScenarioSpec::OverrunHeavy),
            ("drain", None) => Ok(ScenarioSpec::Drain),
            ("mixed", None) => Ok(ScenarioSpec::Mixed),
            ("dag", Some("fanout")) => {
                let width = match param {
                    None => DEFAULT_FANOUT_WIDTH,
                    Some(p) => p
                        .parse::<usize>()
                        .ok()
                        .filter(|&w| (1..=64).contains(&w))
                        .ok_or_else(|| bad(format!("width '{p}' must be an integer in 1..=64")))?,
                };
                Ok(ScenarioSpec::DagFanout { width })
            }
            ("dag", Some("chain")) => {
                let length = match param {
                    None => DEFAULT_CHAIN_LENGTH,
                    Some(p) => p
                        .parse::<usize>()
                        .ok()
                        .filter(|&l| (2..=64).contains(&l))
                        .ok_or_else(|| bad(format!("length '{p}' must be an integer in 2..=64")))?,
                };
                Ok(ScenarioSpec::DagChain { length })
            }
            ("bursty", Some("diurnal")) => {
                let amplitude_pct = match param {
                    None => DEFAULT_DIURNAL_AMPLITUDE_PCT,
                    Some(p) => p
                        .parse::<u32>()
                        .ok()
                        .filter(|&a| (1..=99).contains(&a))
                        .ok_or_else(|| {
                            bad(format!("amplitude '{p}' must be an integer percent in 1..=99"))
                        })?,
                };
                Ok(ScenarioSpec::BurstyDiurnal { amplitude_pct })
            }
            ("bursty", Some("spike")) => {
                let boost = match param {
                    None => DEFAULT_SPIKE_BOOST,
                    Some(p) => p
                        .parse::<u32>()
                        .ok()
                        .filter(|&b| (2..=50).contains(&b))
                        .ok_or_else(|| bad(format!("boost '{p}' must be an integer in 2..=50")))?,
                };
                Ok(ScenarioSpec::BurstySpike { boost })
            }
            ("energy", Some("drain")) => match param {
                None => Ok(ScenarioSpec::EnergyDrain),
                Some(p) => Err(bad(format!("'energy:drain' takes no parameter, got '{p}'"))),
            },
            ("dag" | "bursty" | "energy", Some(other)) => Err(bad(format!(
                "unknown {family} kind '{other}'"
            ))),
            ("dag" | "bursty" | "energy", None) => {
                Err(bad(format!("family '{family}' needs a kind, e.g. '{}'", match family {
                    "dag" => "dag:chain",
                    "bursty" => "bursty:diurnal",
                    _ => "energy:drain",
                })))
            }
            _ => Err(ScenarioParseError::UnknownScenario(norm)),
        }
    }

    /// Parse a comma-separated spec list; `all` expands to the full
    /// registry at default parameters.
    pub fn parse_list(specs: &str) -> Result<Vec<ScenarioSpec>, ScenarioParseError> {
        if specs.trim().eq_ignore_ascii_case("all") {
            return Ok(ScenarioSpec::registered());
        }
        let parsed: Vec<ScenarioSpec> = specs
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(ScenarioSpec::parse)
            .collect::<Result<_, _>>()?;
        if parsed.is_empty() {
            return Err(ScenarioParseError::Empty);
        }
        Ok(parsed)
    }

    /// Does this spec carry a workflow DAG (and thus a meaningful
    /// critical-path regret baseline)?
    pub fn has_dag(&self) -> bool {
        matches!(self, ScenarioSpec::DagFanout { .. } | ScenarioSpec::DagChain { .. })
    }

    /// Materialize this spec into a [`Scenario`] over the caller's job
    /// source. Bursty families replace the source with an open stress
    /// stream sized to the source's scale; every other family layers on
    /// top of `source` unchanged.
    pub fn build(
        &self,
        source: JobSource,
        spec: WorkloadSpec,
        params: SimParams,
        seed: u64,
    ) -> Scenario {
        let name = self.name();
        let clean = Scenario::new(name.clone(), source, spec, params).with_seed(seed);
        match *self {
            ScenarioSpec::Clean => clean,
            ScenarioSpec::CancelHeavy => clean.with_disruption(
                name,
                DisruptionConfig {
                    cancel_fraction: 0.2,
                    overrun_fraction: 0.1,
                    overrun_factor: 1.5,
                    drains: Vec::new(),
                },
            ),
            ScenarioSpec::OverrunHeavy => clean.with_disruption(
                name,
                DisruptionConfig {
                    cancel_fraction: 0.05,
                    overrun_fraction: 0.25,
                    overrun_factor: 2.0,
                    drains: Vec::new(),
                },
            ),
            ScenarioSpec::Drain => {
                let horizon = submit_horizon(&clean.source, seed);
                clean.with_disruption(
                    name,
                    DisruptionConfig {
                        drains: vec![drain_spec(horizon)],
                        ..Default::default()
                    },
                )
            }
            ScenarioSpec::Mixed => {
                let horizon = submit_horizon(&clean.source, seed);
                clean.with_disruption(
                    name,
                    DisruptionConfig {
                        cancel_fraction: 0.15,
                        overrun_fraction: 0.1,
                        overrun_factor: 1.5,
                        drains: vec![drain_spec(horizon)],
                    },
                )
            }
            ScenarioSpec::DagFanout { width } => {
                clean.with_dag(name, DagConfig::Fanout { width })
            }
            ScenarioSpec::DagChain { length } => {
                clean.with_dag(name, DagConfig::Chain { length })
            }
            ScenarioSpec::BurstyDiurnal { amplitude_pct } => {
                let mut s = clean;
                let (stress, period) = bursty_stress(&s.source);
                s.source = JobSource::Stress(stress.with_arrivals(ArrivalProcess::Diurnal {
                    period_secs: period,
                    amplitude: f64::from(amplitude_pct) / 100.0,
                }));
                s
            }
            ScenarioSpec::BurstySpike { boost } => {
                let mut s = clean;
                let (stress, period) = bursty_stress(&s.source);
                s.source = JobSource::Stress(stress.with_arrivals(ArrivalProcess::Spike {
                    period_secs: period,
                    burst_fraction: 0.1,
                    boost: f64::from(boost),
                }));
                s
            }
            ScenarioSpec::EnergyDrain => {
                let horizon = submit_horizon(&clean.source, seed);
                let mut s = clean.with_disruption(
                    name,
                    DisruptionConfig {
                        drains: vec![drain_spec(horizon)],
                        ..Default::default()
                    },
                );
                s.params.power = Some(PowerModel::hpc_default());
                s
            }
        }
    }
}

/// Build a list of scenarios from a spec string over one shared source.
pub fn build_scenarios(
    specs: &str,
    source: &JobSource,
    spec: &WorkloadSpec,
    params: SimParams,
    seed: u64,
) -> Result<Vec<Scenario>, ScenarioParseError> {
    Ok(ScenarioSpec::parse_list(specs)?
        .into_iter()
        .map(|s| s.build(source.clone(), spec.clone(), params, seed))
        .collect())
}

/// Max submit time of a probe trace of the source — the horizon used to
/// place drains proportionally.
pub(crate) fn submit_horizon(source: &JobSource, seed: u64) -> u64 {
    source.trace(mix_seed(seed, 1)).iter().map(|t| t.submit).max().unwrap_or(0)
}

/// A 25 % node drain a third of the way into the horizon, lasting a
/// third of the horizon (at least one simulated hour).
pub(crate) fn drain_spec(horizon: u64) -> DrainSpec {
    DrainSpec {
        resource: 0,
        fraction: 0.25,
        at: horizon / 3,
        duration: (horizon / 3).max(3600),
    }
}

/// Derive an open-stream stress config at roughly the same scale as the
/// caller's source: same node pool, ~0.7 offered load, duration-driven
/// over a horizon sized so the mean arrival count matches the source's
/// trace length (the hard cap sits at 3× that to keep outlier seeds
/// bounded). Returns the config plus the rate-modulation period — a
/// quarter of the horizon, so every episode sees several full waves or
/// storm cycles regardless of the source's scale.
fn bursty_stress(source: &JobSource) -> (StressConfig, f64) {
    let (nodes, count) = match source {
        JobSource::Theta(cfg) => (cfg.machine_nodes, cfg.num_jobs.max(1)),
        JobSource::Trace(jobs) => (
            jobs.iter().map(|j| j.nodes).max().unwrap_or(1).max(1),
            jobs.len().max(1),
        ),
        JobSource::Stress(cfg) => (
            cfg.capacities.first().copied().unwrap_or(1).max(1),
            cfg.num_jobs.max(1),
        ),
    };
    let mut cfg = StressConfig::engine(count.saturating_mul(3), vec![nodes]);
    cfg.mean_runtime = 600.0;
    cfg.estimate_slack = 1.0;
    // Mean interarrival mirrors StressConfig::generate's derivation, so
    // `horizon = mean_interarrival · count` lands near `count` arrivals.
    let mean_d0 = (1.0 + (nodes / 8).max(1) as f64) / 2.0;
    let mean_interarrival = mean_d0 * cfg.mean_runtime / (nodes as f64 * cfg.utilization);
    let horizon = (mean_interarrival * count as f64).ceil().max(4.0);
    (cfg.with_horizon(horizon as u64), horizon / 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_specs_cover_all_three_new_families() {
        let reg = ScenarioSpec::registered();
        assert_eq!(reg.len(), 10);
        assert!(reg.iter().any(|s| s.has_dag()));
        assert!(reg.iter().any(|s| matches!(s, ScenarioSpec::BurstyDiurnal { .. })));
        assert!(reg.iter().any(|s| matches!(s, ScenarioSpec::EnergyDrain)));
    }

    #[test]
    fn parse_accepts_bare_families_with_defaults() {
        assert_eq!(
            ScenarioSpec::parse("dag:chain").unwrap(),
            ScenarioSpec::DagChain { length: DEFAULT_CHAIN_LENGTH }
        );
        assert_eq!(
            ScenarioSpec::parse("bursty:spike").unwrap(),
            ScenarioSpec::BurstySpike { boost: DEFAULT_SPIKE_BOOST }
        );
        assert_eq!(
            ScenarioSpec::parse("DAG:Fanout:8").unwrap(),
            ScenarioSpec::DagFanout { width: 8 }
        );
        assert_eq!(
            ScenarioSpec::parse("cancel_heavy").unwrap(),
            ScenarioSpec::CancelHeavy,
            "underscores normalize"
        );
    }

    #[test]
    fn malformed_parameters_are_typed_errors() {
        for bad in ["dag:fanout:x", "dag:fanout:0", "dag:chain:1", "bursty:diurnal:150",
                    "bursty:spike:1", "energy:drain:5", "dag", "bursty:tidal"] {
            match ScenarioSpec::parse(bad) {
                Err(ScenarioParseError::BadParameter { spec, .. }) => {
                    assert_eq!(spec, bad);
                }
                other => panic!("{bad} should be BadParameter, got {other:?}"),
            }
        }
        assert!(matches!(
            ScenarioSpec::parse("bogus"),
            Err(ScenarioParseError::UnknownScenario(_))
        ));
        assert!(matches!(ScenarioSpec::parse("  "), Err(ScenarioParseError::Empty)));
    }

    #[test]
    fn all_expands_to_the_full_registry() {
        let all = ScenarioSpec::parse_list("all").unwrap();
        assert_eq!(all, ScenarioSpec::registered());
        let two = ScenarioSpec::parse_list("clean, dag:chain:3").unwrap();
        assert_eq!(two.len(), 2);
        assert!(ScenarioSpec::parse_list(" , ").is_err());
    }
}
