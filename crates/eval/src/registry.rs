//! The unified policy registry: one string-addressable [`PolicySpec`]
//! per scheduler, covering construction, optional training (through the
//! `mrsch::engine` training machinery for learnable policies) and
//! instantiation as a boxed [`mrsim::Policy`].
//!
//! Before this module every experiment driver hand-rolled its own
//! policy constructors (`comparison.rs` had a hard-coded four-method
//! match, the CLI another, `disruption_curriculum.rs` a third). A new
//! policy or a new scenario family now means one registry entry instead
//! of N driver edits: anything that can name a `PolicySpec` ("fcfs",
//! "list:lpt", "ga", "scalar-rl", "mrsch", ...) can run it on any
//! [`Scenario`] through the [`crate::harness`].

use mrsch::prelude::*;
use mrsch_baselines::heuristics::{ListOrder, ListPolicy};
use mrsch_baselines::scalar_rl::{RlMode, ScalarRlAgent, ScalarRlConfig, ScalarRlPolicy};
use mrsch_baselines::{FcfsPolicy, GaPolicy, TrainedScalarRlPolicy};
use serde::{Deserialize, Serialize};

/// MRSch-specific build options.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrschSpec {
    /// State-module architecture (Fig. 3 ablation: MLP vs CNN).
    pub state_module: StateModuleKind,
    /// Optional display/name tag so one plan can evaluate several MRSch
    /// variants (e.g. "mrsch-clean" vs "mrsch-hardened" differing only
    /// in their training curricula).
    pub tag: Option<String>,
}

impl Default for MrschSpec {
    fn default() -> Self {
        Self { state_module: StateModuleKind::Mlp, tag: None }
    }
}

/// A registered, string-addressable scheduling policy.
///
/// `PolicySpec` knows three things about each policy: how to *name* it
/// ([`PolicySpec::name`] / [`PolicySpec::parse`]), whether it *learns*
/// ([`PolicySpec::is_learnable`]), and how to *build* a ready-to-run
/// boxed [`mrsim::Policy`] for evaluation ([`PolicySpec::build`] —
/// training learnable policies on the way).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Multi-resource FCFS (the paper's "Heuristic").
    Fcfs,
    /// A list-scheduling heuristic (`list:sjf`, `list:lpt`, ...).
    List(ListOrder),
    /// The NSGA-II window optimizer (the paper's "Optimization").
    Ga,
    /// The NSGA-II optimizer re-seeded per grid cell: its RNG derives
    /// from the *grid seed* and it forgoes the harness's instance
    /// reuse, exposing GA's per-seed stochasticity that plain `ga`
    /// deliberately freezes (ROADMAP carry-over).
    GaReseed,
    /// The fixed-weight scalar-reward policy-gradient baseline.
    ScalarRl,
    /// The MRSch DFP agent, trained through the engine.
    Mrsch(MrschSpec),
}

impl PolicySpec {
    /// An `mrsch` spec with default options.
    pub fn mrsch() -> Self {
        PolicySpec::Mrsch(MrschSpec::default())
    }

    /// An `mrsch` spec with a distinguishing tag (several MRSch
    /// variants in one plan).
    pub fn mrsch_tagged(tag: impl Into<String>) -> Self {
        PolicySpec::Mrsch(MrschSpec { tag: Some(tag.into()), ..MrschSpec::default() })
    }

    /// Every registered policy, in canonical order — the full set of
    /// parseable names (minus tag variants). This is what the
    /// conformance test and the CLI's `--policy all` expand to.
    pub fn registered() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Fcfs,
            PolicySpec::List(ListOrder::ShortestFirst),
            PolicySpec::List(ListOrder::LongestFirst),
            PolicySpec::List(ListOrder::SmallestFirst),
            PolicySpec::List(ListOrder::LargestFirst),
            PolicySpec::List(ListOrder::MostDemandingFirst),
            PolicySpec::Ga,
            PolicySpec::GaReseed,
            PolicySpec::ScalarRl,
            PolicySpec::mrsch(),
            PolicySpec::Mrsch(MrschSpec { state_module: StateModuleKind::Cnn, tag: None }),
        ]
    }

    /// Canonical name (round-trips through [`PolicySpec::parse`] unless
    /// a tag overrides it).
    pub fn name(&self) -> String {
        match self {
            PolicySpec::Fcfs => "fcfs".into(),
            PolicySpec::List(o) => match o {
                ListOrder::ShortestFirst => "list:sjf".into(),
                ListOrder::LongestFirst => "list:lpt".into(),
                ListOrder::SmallestFirst => "list:smallest".into(),
                ListOrder::LargestFirst => "list:largest".into(),
                ListOrder::MostDemandingFirst => "list:demanding".into(),
            },
            PolicySpec::Ga => "ga".into(),
            PolicySpec::GaReseed => "ga:reseed".into(),
            PolicySpec::ScalarRl => "scalar-rl".into(),
            PolicySpec::Mrsch(m) => match (&m.tag, m.state_module) {
                (Some(tag), _) => tag.clone(),
                (None, StateModuleKind::Mlp) => "mrsch".into(),
                (None, StateModuleKind::Cnn) => "mrsch:cnn".into(),
            },
        }
    }

    /// Parse a policy name. Accepts the canonical names plus common
    /// aliases (`sjf`, `ljf`, `lpt`, `spt`, `heuristic`, `optimization`,
    /// `scalar_rl`).
    pub fn parse(s: &str) -> Result<PolicySpec, String> {
        let norm = s.trim().to_lowercase();
        let spec = match norm.as_str() {
            "fcfs" | "heuristic" => PolicySpec::Fcfs,
            "list:sjf" | "sjf" | "list:spt" | "spt" => {
                PolicySpec::List(ListOrder::ShortestFirst)
            }
            "list:ljf" | "ljf" | "list:lpt" | "lpt" => PolicySpec::List(ListOrder::LongestFirst),
            "list:smallest" | "smallest" => PolicySpec::List(ListOrder::SmallestFirst),
            "list:largest" | "largest" => PolicySpec::List(ListOrder::LargestFirst),
            "list:demanding" | "demanding" => PolicySpec::List(ListOrder::MostDemandingFirst),
            "ga" | "optimization" => PolicySpec::Ga,
            "ga:reseed" => PolicySpec::GaReseed,
            "scalar-rl" | "scalar_rl" => PolicySpec::ScalarRl,
            "mrsch" => PolicySpec::mrsch(),
            "mrsch:cnn" => {
                PolicySpec::Mrsch(MrschSpec { state_module: StateModuleKind::Cnn, tag: None })
            }
            other => {
                return Err(format!(
                    "unknown policy '{other}' (expected one of: fcfs, list:sjf, list:lpt, \
                     list:smallest, list:largest, list:demanding, ga, ga:reseed, scalar-rl, \
                     mrsch, mrsch:cnn)"
                ))
            }
        };
        Ok(spec)
    }

    /// Parse a comma-separated policy list; `all` expands to the whole
    /// registry.
    pub fn parse_list(s: &str) -> Result<Vec<PolicySpec>, String> {
        if s.trim().eq_ignore_ascii_case("all") {
            return Ok(Self::registered());
        }
        s.split(',').filter(|p| !p.trim().is_empty()).map(Self::parse).collect()
    }

    /// Does this policy train before evaluation?
    pub fn is_learnable(&self) -> bool {
        matches!(self, PolicySpec::ScalarRl | PolicySpec::Mrsch(_))
    }

    /// May the harness reuse one built instance across grid cells
    /// (reset between cells, built with a grid-seed-independent seed)?
    /// `ga:reseed` opts out: it exists precisely to derive fresh GA
    /// randomness from each cell's grid seed. Only consulted for
    /// non-learnable specs (learnable policies train per cell anyway).
    pub fn reuses_instances(&self) -> bool {
        !matches!(self, PolicySpec::GaReseed)
    }

    /// Build (and for learnable policies, train) a ready-to-evaluate
    /// boxed policy.
    ///
    /// Deterministic in `ctx`: the same context always yields a policy
    /// whose episodes replay bit-identically — the property the
    /// registry conformance test pins for every registered spec.
    pub fn build(&self, ctx: &BuildContext<'_>) -> Box<dyn Policy + Send> {
        match self {
            PolicySpec::Fcfs => Box::new(FcfsPolicy::default()),
            PolicySpec::List(order) => Box::new(ListPolicy::new(*order)),
            PolicySpec::Ga | PolicySpec::GaReseed => Box::new(GaPolicy::with_seed(ctx.seed)),
            PolicySpec::ScalarRl => Box::new(trained_scalar_rl(ctx)),
            PolicySpec::Mrsch(m) => Box::new(trained_mrsch(ctx, m.state_module).into_eval_policy()),
        }
    }

    /// [`PolicySpec::build`] through the content-addressed trained-policy
    /// cache: a hit rebuilds the (untrained) policy from the same context
    /// recipe and restores the cached weights instead of training; a miss
    /// trains and stores the checkpoint. Falls back to a plain
    /// [`PolicySpec::build`] for non-learnable specs, untrained contexts,
    /// and non-cacheable trainer configs (bounded staleness).
    ///
    /// Bit-identity of hit vs miss is the cache's core contract:
    /// evaluation acts greedily (no RNG draws), so restored weights replay
    /// a fresh train's episodes exactly — `crate::harness` pins it.
    pub fn build_cached(
        &self,
        ctx: &BuildContext<'_>,
        cache: Option<&crate::cache::PolicyCache>,
    ) -> Box<dyn Policy + Send> {
        let (cache, curriculum) = match (cache, ctx.train) {
            (Some(cache), Some(cur))
                if self.is_learnable() && crate::cache::is_cacheable(&ctx.trainer) =>
            {
                (cache, cur)
            }
            _ => return self.build(ctx),
        };
        let key = crate::cache::cache_key(
            self,
            ctx.system,
            ctx.params,
            ctx.seed,
            curriculum,
            &ctx.trainer,
            ctx.dfp_config,
        );
        if let Some(payload) = cache.read(key) {
            // A payload that fails to load (corrupt, or a shape drift the
            // key didn't capture) degrades to a miss and is overwritten.
            if let Some(policy) = self.rebuild_from_checkpoint(ctx, &payload) {
                cache.note_hit();
                return policy;
            }
        }
        cache.note_miss();
        let (policy, ckpt) = self.build_trained_with_checkpoint(ctx);
        cache.store(key, &ckpt);
        policy
    }

    /// Rebuild a learnable policy from cached weights: same construction
    /// recipe as a fresh build, minus the training loop.
    fn rebuild_from_checkpoint(
        &self,
        ctx: &BuildContext<'_>,
        payload: &[u8],
    ) -> Option<Box<dyn Policy + Send>> {
        match self {
            PolicySpec::ScalarRl => {
                let (mut agent, encoder) = untrained_scalar_rl(ctx);
                agent.load_checkpoint(payload).ok()?;
                Some(Box::new(TrainedScalarRlPolicy::new(agent, encoder)))
            }
            PolicySpec::Mrsch(m) => {
                let mut mrsch = untrained_mrsch(ctx, m.state_module);
                mrsch.agent_mut().network_mut().load_checkpoint(payload).ok()?;
                Some(Box::new(mrsch.into_eval_policy()))
            }
            _ => None,
        }
    }

    /// Train a learnable policy and capture its weight checkpoint for the
    /// cache on the way out.
    fn build_trained_with_checkpoint(
        &self,
        ctx: &BuildContext<'_>,
    ) -> (Box<dyn Policy + Send>, Vec<u8>) {
        match self {
            PolicySpec::ScalarRl => {
                let mut policy = trained_scalar_rl(ctx);
                let ckpt = policy.agent_mut().save_checkpoint().to_vec();
                (Box::new(policy), ckpt)
            }
            PolicySpec::Mrsch(m) => {
                let mut mrsch = trained_mrsch(ctx, m.state_module);
                let ckpt = mrsch.agent_mut().network_mut().save_checkpoint().to_vec();
                (Box::new(mrsch.into_eval_policy()), ckpt)
            }
            _ => unreachable!("only learnable specs reach the cache path"),
        }
    }
}

/// Everything a [`PolicySpec::build`] needs: the (spec-resolved) system,
/// simulator parameters, a seed, and — for learnable policies — the
/// training curriculum plus engine knobs.
#[derive(Clone, Debug)]
pub struct BuildContext<'a> {
    /// The system the policy will be evaluated on (already extended by
    /// the workload spec, e.g. three-resource for S6–S10).
    pub system: &'a SystemConfig,
    /// Simulator parameters (the window size doubles as the action
    /// count of learnable policies).
    pub params: SimParams,
    /// Seed for network initialization / internal RNGs.
    pub seed: u64,
    /// Training curriculum for learnable policies (`None` leaves them
    /// untrained — useful only for smoke tests).
    pub train: Option<&'a Curriculum>,
    /// Engine knobs for MRSch training (rollout workers, round size,
    /// gradient steps per episode).
    pub trainer: TrainerConfig,
    /// Architecture override for MRSch (tiny networks in tests). The
    /// dimension fields are still resized to match the encoder.
    pub dfp_config: Option<&'a DfpConfig>,
}

impl<'a> BuildContext<'a> {
    /// A context with default engine knobs and no training.
    pub fn new(system: &'a SystemConfig, params: SimParams, seed: u64) -> Self {
        Self { system, params, seed, train: None, trainer: TrainerConfig::default(), dfp_config: None }
    }

    /// Attach a training curriculum.
    pub fn with_training(mut self, curriculum: &'a Curriculum) -> Self {
        self.train = Some(curriculum);
        self
    }
}

/// Build and curriculum-train an MRSch agent — the one place the MRSch
/// construction recipe (ε schedule sized to the episode budget, short
/// prediction horizons) lives. Figure drivers that need the live
/// [`Mrsch`] handle (goal logging, ablations) call this directly; the
/// harness goes through [`PolicySpec::build`], which wraps the result
/// into an owned evaluation policy.
pub fn trained_mrsch(ctx: &BuildContext<'_>, state_module: StateModuleKind) -> Mrsch {
    let mut mrsch = untrained_mrsch(ctx, state_module);
    if let Some(curriculum) = ctx.train {
        mrsch.train_with_curriculum(curriculum);
    }
    mrsch
}

/// The MRSch construction recipe without the training loop — the shared
/// half of [`trained_mrsch`] and the policy cache's checkpoint-restore
/// path ([`PolicySpec::build_cached`]), which must build the *identical*
/// agent before loading cached weights into it.
fn untrained_mrsch(ctx: &BuildContext<'_>, state_module: StateModuleKind) -> Mrsch {
    let episodes = ctx.train.map(|c| c.total_episodes()).unwrap_or(0).max(1) as f64;
    let mut cfg = ctx.dfp_config.cloned().unwrap_or_else(|| {
        let mut cfg =
            DfpConfig::scaled(1, ctx.system.num_resources(), ctx.params.window);
        // Shorter prediction horizons than DFP's gaming defaults:
        // scheduling instances are minutes apart, so a 32-decision
        // horizon spans hours and its measurement changes are dominated
        // by arrival noise. The nearer offsets carry the learnable
        // signal at this trace scale.
        cfg.offsets = vec![1, 2, 4, 8];
        cfg.offset_weights = vec![0.25, 0.25, 0.5, 1.0];
        cfg
    });
    // The paper decays ε by 0.995 per episode over 40 job sets; at
    // reproduction scale the budget is an order of magnitude smaller,
    // so the decay is proportionally faster — otherwise the agent would
    // still act almost uniformly at random when training ends.
    cfg.epsilon_min = 0.05;
    cfg.epsilon_decay = (cfg.epsilon_min as f64).powf(1.0 / episodes) as f32;
    MrschBuilder::new(ctx.system.clone(), ctx.params)
        .seed(ctx.seed)
        .state_module(state_module)
        .trainer(ctx.trainer.clone())
        .dfp_config(cfg)
        .build()
}

/// Build and train the scalar-RL baseline over the same curriculum
/// episodes an MRSch agent would see (scenario-materialized jobs,
/// disruption events injected), then freeze it for evaluation.
fn trained_scalar_rl(ctx: &BuildContext<'_>) -> TrainedScalarRlPolicy {
    let (mut agent, encoder) = untrained_scalar_rl(ctx);
    if let Some(curriculum) = ctx.train {
        for phase in curriculum.phases() {
            for episode in 0..phase.episodes {
                let spec = phase.scenario.materialize(ctx.system, episode as u64);
                let mut sim = spec
                    .simulator(ctx.system.clone())
                    .expect("scenario episode must fit the system");
                let mut policy = ScalarRlPolicy::new(&mut agent, encoder.clone(), RlMode::Train);
                sim.run(&mut policy);
            }
        }
    }
    TrainedScalarRlPolicy::new(agent, encoder)
}

/// The scalar-RL construction recipe without the training loop (see
/// [`untrained_mrsch`] for why the split exists).
fn untrained_scalar_rl(ctx: &BuildContext<'_>) -> (ScalarRlAgent, StateEncoder) {
    let encoder = StateEncoder::with_hour_scale(ctx.system.clone(), ctx.params.window);
    let cfg = ScalarRlConfig::scaled(
        encoder.state_dim(),
        ctx.params.window,
        ctx.system.num_resources(),
    );
    (ScalarRlAgent::new(cfg, ctx.seed), encoder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for spec in PolicySpec::registered() {
            let name = spec.name();
            assert_eq!(PolicySpec::parse(&name).unwrap(), spec, "{name}");
        }
    }

    #[test]
    fn aliases_and_lists_parse() {
        assert_eq!(PolicySpec::parse("LPT").unwrap(), PolicySpec::List(ListOrder::LongestFirst));
        assert_eq!(PolicySpec::parse("heuristic").unwrap(), PolicySpec::Fcfs);
        assert_eq!(PolicySpec::parse("scalar_rl").unwrap(), PolicySpec::ScalarRl);
        let list = PolicySpec::parse_list("fcfs, ga").unwrap();
        assert_eq!(list, vec![PolicySpec::Fcfs, PolicySpec::Ga]);
        assert_eq!(PolicySpec::parse_list("all").unwrap(), PolicySpec::registered());
        assert!(PolicySpec::parse("bogus").is_err());
    }

    #[test]
    fn tags_rename_mrsch_variants() {
        let tagged = PolicySpec::mrsch_tagged("mrsch-hardened");
        assert_eq!(tagged.name(), "mrsch-hardened");
        assert!(tagged.is_learnable());
    }

    #[test]
    fn registered_names_are_unique() {
        let names: Vec<String> = PolicySpec::registered().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }

    #[test]
    fn ga_reseed_is_registered_and_forgoes_instance_reuse() {
        assert!(PolicySpec::registered().contains(&PolicySpec::GaReseed));
        assert_eq!(PolicySpec::parse("ga:reseed").unwrap(), PolicySpec::GaReseed);
        assert!(!PolicySpec::GaReseed.is_learnable());
        assert!(!PolicySpec::GaReseed.reuses_instances());
        // Every other registered spec keeps the reuse contract.
        for spec in PolicySpec::registered() {
            if spec != PolicySpec::GaReseed {
                assert!(spec.reuses_instances(), "{}", spec.name());
            }
        }
    }

    #[test]
    fn non_learnable_build_needs_no_curriculum() {
        let system = SystemConfig::two_resource(8, 4);
        let ctx = BuildContext::new(&system, SimParams::new(4, true), 3);
        for spec in [PolicySpec::Fcfs, PolicySpec::Ga, PolicySpec::List(ListOrder::ShortestFirst)]
        {
            let mut policy = spec.build(&ctx);
            assert!(!spec.is_learnable());
            policy.reset(); // must not panic
        }
    }
}
