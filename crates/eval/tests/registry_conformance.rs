//! Registry conformance: every registered [`PolicySpec`] must run a
//! tiny scenario twice with the same seed and produce **bit-identical**
//! `SimReport`s — both on a fresh instance and on the *same* instance
//! after [`mrsim::Policy::reset`]. This catches policies with unseeded
//! internal state (a wall-clock RNG, a cache that survives reset) the
//! moment they are registered, before they can silently break the
//! harness's worker-count invariance.

use mrsch::prelude::*;
use mrsch_eval::{default_training_curriculum, BuildContext, PolicySpec};

fn tiny_scenario() -> Scenario {
    Scenario::new(
        "conformance",
        JobSource::Theta(ThetaConfig {
            machine_nodes: 16,
            mean_interarrival: 120.0,
            ..ThetaConfig::scaled(14)
        }),
        WorkloadSpec::s1(),
        SimParams::new(4, true),
    )
    .with_seed(11)
}

fn tiny_dfp() -> DfpConfig {
    let mut cfg = DfpConfig::scaled(64, 2, 4);
    cfg.state_hidden = vec![32];
    cfg.state_embed = 16;
    cfg.io_hidden = 16;
    cfg.io_embed = 8;
    cfg.stream_hidden = 32;
    cfg.batch_size = 8;
    cfg
}

fn run_once(system: &SystemConfig, scenario: &Scenario, policy: &mut dyn Policy) -> SimReport {
    let episode = scenario.materialize(system, 23);
    let mut sim = episode.simulator(system.clone()).expect("conformance jobs fit");
    sim.run(policy)
}

#[test]
fn every_registered_policy_replays_bit_identically() {
    let system = SystemConfig::two_resource(16, 8);
    let scenario = tiny_scenario();
    let curriculum = default_training_curriculum(&scenario, 1);
    let dfp = tiny_dfp();
    for spec in PolicySpec::registered() {
        let ctx = BuildContext {
            system: &system,
            params: scenario.params,
            seed: 5,
            train: spec.is_learnable().then_some(&curriculum),
            trainer: TrainerConfig::default().batches_per_episode(2),
            dfp_config: Some(&dfp),
        };
        // Same instance, reset between episodes.
        let mut policy = spec.build(&ctx);
        let first = run_once(&system, &scenario, policy.as_mut());
        policy.reset();
        let second = run_once(&system, &scenario, policy.as_mut());
        assert_eq!(
            first, second,
            "{}: rerun after reset() must be bit-identical (unseeded internal state?)",
            spec.name()
        );
        // Fresh instance from the identical context.
        let mut fresh = spec.build(&ctx);
        let third = run_once(&system, &scenario, fresh.as_mut());
        assert_eq!(
            first, third,
            "{}: a fresh instance from the same context must reproduce the episode",
            spec.name()
        );
        assert!(
            first.jobs_completed + first.jobs_cancelled + first.jobs_killed > 0,
            "{}: conformance episode must actually schedule",
            spec.name()
        );
    }
}

#[test]
fn different_seeds_change_learnable_policies() {
    let system = SystemConfig::two_resource(16, 8);
    let scenario = tiny_scenario();
    let curriculum = default_training_curriculum(&scenario, 2);
    let dfp = tiny_dfp();
    let run_with_seed = |seed: u64| {
        let ctx = BuildContext {
            system: &system,
            params: scenario.params,
            seed,
            train: Some(&curriculum),
            trainer: TrainerConfig::default().batches_per_episode(4),
            dfp_config: Some(&dfp),
        };
        let mut policy = PolicySpec::mrsch().build(&ctx);
        run_once(&system, &scenario, policy.as_mut())
    };
    // Not asserting inequality of full reports (tiny nets can tie), but
    // the runs must at least be well-formed under both seeds.
    let a = run_with_seed(1);
    let b = run_with_seed(2);
    assert!(a.jobs_completed > 0);
    assert!(b.jobs_completed > 0);
}
