//! Scenario-registry conformance, mirroring `registry_conformance`:
//! every registered [`ScenarioSpec`] must round-trip through
//! `parse`/`Display`, materialize deterministically, actually run, and
//! honour its family's structural contract — DAG episodes never start a
//! task before its predecessors are terminal and never beat the
//! critical-path bound, bursty episodes vary their job counts across
//! episodes, and energy scenarios report nonzero energy.

use mrsch::prelude::*;
use mrsch_eval::{EvalPlan, PolicySpec, ScenarioParseError, ScenarioSpec};

fn tiny_source() -> JobSource {
    JobSource::Theta(ThetaConfig {
        machine_nodes: 16,
        mean_interarrival: 120.0,
        ..ThetaConfig::scaled(16)
    })
}

fn build(spec: &ScenarioSpec) -> Scenario {
    spec.build(tiny_source(), WorkloadSpec::s1(), SimParams::new(4, true), 11)
}

#[test]
fn every_registered_spec_round_trips_and_materializes_deterministically() {
    for spec in ScenarioSpec::registered() {
        let name = spec.name();
        assert_eq!(
            ScenarioSpec::parse(&name).unwrap(),
            spec,
            "{name}: Display must parse back to the same spec"
        );
        let scenario = build(&spec);
        assert_eq!(scenario.name, name, "scenario takes the spec string as its name");
        let system = scenario.spec.system_for(&SystemConfig::two_resource(16, 8));
        let a = scenario.materialize(&system, 23);
        let b = scenario.materialize(&system, 23);
        assert_eq!(a, b, "{name}: same (scenario, system, episode) must be bit-identical");
        assert!(!a.jobs.is_empty(), "{name}: episode must carry jobs");
        let mut sim = a.simulator(system.clone()).expect("episode fits the system");
        let report = sim.run(&mut HeadOfQueue);
        assert!(
            report.all_jobs_accounted(a.jobs.len()),
            "{name}: every job must reach a terminal state"
        );
        // The bound is exact only for cancellation-free episodes (a
        // cancelled job's "runtime" vanishes); check it where it holds.
        if scenario.disruption == DisruptionConfig::default() {
            assert!(
                report.makespan >= a.makespan_lower_bound(&system),
                "{name}: makespan beat the lower bound on a disruption-free episode"
            );
        }
    }
}

#[test]
fn malformed_suffixes_are_typed_errors() {
    for bad in ["dag:fanout:wide", "dag:chain:-2", "bursty:diurnal:0", "bursty:spike:999"] {
        assert!(
            matches!(ScenarioSpec::parse(bad), Err(ScenarioParseError::BadParameter { .. })),
            "{bad} must be a BadParameter error"
        );
    }
    assert!(matches!(
        ScenarioSpec::parse("quantum"),
        Err(ScenarioParseError::UnknownScenario(_))
    ));
    assert!(matches!(ScenarioSpec::parse(""), Err(ScenarioParseError::Empty)));
    // Error text doubles as CLI help: it must list the registry.
    let msg = ScenarioSpec::parse("quantum").unwrap_err().to_string();
    for listed in ["clean", "dag:fanout:3", "bursty:diurnal:60", "energy:drain"] {
        assert!(msg.contains(listed), "error should list '{listed}': {msg}");
    }
}

#[test]
fn dag_scenarios_respect_dependencies_and_the_cp_bound_for_every_policy() {
    // Conservation across the policy axis: under any registered
    // non-learnable policy and several seeds, no DAG task starts before
    // all its predecessors are terminal, and the makespan never beats
    // the critical-path/area lower bound (cells carry it as cp_bound).
    let specs = [
        ScenarioSpec::DagChain { length: 3 },
        ScenarioSpec::DagFanout { width: 4 },
    ];
    let scenarios: Vec<Scenario> = specs.iter().map(build).collect();
    let policies: Vec<PolicySpec> = [
        "fcfs",
        "list:sjf",
        "list:lpt",
        "ga",
    ]
    .iter()
    .map(|s| PolicySpec::parse(s).unwrap())
    .collect();
    let grid = EvalPlan::new(
        SystemConfig::two_resource(16, 8),
        policies,
        scenarios.clone(),
        vec![1, 2, 3],
    )
    .run();
    for cell in &grid.cells {
        assert!(cell.cp_bound > 0, "{}/{}: DAG episodes have a bound", cell.policy, cell.scenario);
        assert!(
            cell.report.makespan >= cell.cp_bound,
            "{}/{} seed {}: makespan {} beat the lower bound {}",
            cell.policy,
            cell.scenario,
            cell.seed,
            cell.report.makespan,
            cell.cp_bound
        );
        assert!(cell.cp_regret() >= 0.0);
    }
    // Replay one episode per scenario and check precedence on the
    // recorded start times directly.
    for scenario in &scenarios {
        let system = scenario.spec.system_for(&SystemConfig::two_resource(16, 8));
        let episode = scenario.materialize(&system, 7);
        assert!(episode.deps.iter().any(|d| !d.is_empty()), "DAG episodes carry deps");
        let mut sim = episode.simulator(system).expect("episode fits");
        let report = sim.run(&mut HeadOfQueue);
        for (i, preds) in episode.deps.iter().enumerate() {
            let rec = report.records.iter().find(|r| r.id == i).expect("record per job");
            for &p in preds {
                let pred = report.records.iter().find(|r| r.id == p).expect("pred record");
                assert!(
                    rec.start >= pred.end,
                    "{}: task {i} started at {} before predecessor {p} ended at {}",
                    scenario.name,
                    rec.start,
                    pred.end
                );
            }
        }
    }
}

#[test]
fn bursty_scenarios_are_open_streams_with_episode_dependent_lengths() {
    for spec in [
        ScenarioSpec::BurstyDiurnal { amplitude_pct: 60 },
        ScenarioSpec::BurstySpike { boost: 6 },
    ] {
        let scenario = build(&spec);
        assert!(
            matches!(scenario.source, JobSource::Stress(_)),
            "{spec}: bursty families synthesize open stress streams"
        );
        let system = scenario.spec.system_for(&SystemConfig::two_resource(16, 8));
        let counts: Vec<usize> =
            (0..6).map(|e| scenario.materialize(&system, e).jobs.len()).collect();
        assert!(
            counts.windows(2).any(|w| w[0] != w[1]),
            "{spec}: duration-driven generation should vary job counts, got {counts:?}"
        );
    }
}

#[test]
fn energy_drain_reports_nonzero_energy_and_plain_drain_does_not() {
    let system = SystemConfig::two_resource(16, 8);
    let run = |spec: ScenarioSpec| {
        let scenario = build(&spec);
        let system = scenario.spec.system_for(&system);
        let episode = scenario.materialize(&system, 3);
        episode.simulator(system).expect("fits").run(&mut HeadOfQueue)
    };
    let energy = run(ScenarioSpec::EnergyDrain);
    assert!(energy.energy_kwh() > 0.0, "energy:drain must meter energy");
    assert!(energy.energy_active_joules > 0.0 && energy.energy_idle_joules > 0.0);
    let plain = run(ScenarioSpec::Drain);
    assert_eq!(plain.energy_kwh(), 0.0, "plain drain carries no power model");
}
