//! **mrsch-serve** — production-latency decision serving for MRSch.
//!
//! The paper positions MRSch as an *online* scheduler: every scheduling
//! instance is one network inference, and §V reports decision overhead
//! as the practical deployment constraint. This crate turns the frozen
//! policy machinery ([`mrsch_dfp::PolicySnapshot`], the PR 4 registry)
//! into a long-running decision service:
//!
//! * [`protocol`] — a line-delimited request/response format
//!   (`id;state;meas;goal;valid` → `id;action`), transport-agnostic;
//! * [`engine`] — the [`engine::DecisionEngine`]: a frozen DFP network
//!   answering single requests (fused-gemv hot path) or whole
//!   micro-batches (one packed GEMM), **bit-identically** — coalescing
//!   can never change a decision;
//! * [`batcher`] — a bounded micro-batching queue: requests accumulate
//!   until depth `B` or a deadline `τ`, then a worker pool flushes them
//!   through [`engine::DecisionEngine::decide_batch`];
//! * [`histogram`] — an HDR-style log-bucketed latency histogram
//!   (p50/p95/p99 at ≤ 1/16 relative error, fixed memory);
//! * [`loadgen`] — a seeded open-arrival load generator (Poisson
//!   arrival gaps from `mrsch_workload::stress`, scaled to a target
//!   QPS) for self-contained load tests;
//! * [`server`] — stdin and TCP serving loops plus the
//!   [`server::run_loadtest`] harness used by CI and the bench suite;
//! * [`cli`] — the `mrsch_cli serve` subcommand (hand-rolled flags, no
//!   clap, per the offline dependency policy).
//!
//! Determinism: the decision path inherits the GEMM/gemv bit-exactness
//! contract, so the served action stream is a pure function of
//! `(weights, request)` — independent of batching depth, flush timing,
//! worker count, and transport.

pub mod batcher;
pub mod cli;
pub mod engine;
pub mod histogram;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use batcher::{BatcherConfig, MicroBatcher, Reply};
pub use engine::{build_engine, DecisionEngine, EngineSpec};
pub use histogram::LatencyHistogram;
pub use loadgen::{arrival_offsets, synth_requests, LoadgenConfig};
pub use protocol::{format_response, parse_request, parse_response, Request};
pub use server::{run_loadtest, LoadReport};
