//! The `mrsch_cli serve` subcommand.
//!
//! Hand-rolled flag parsing (no clap — the workspace vendors its
//! dependencies and keeps the CLI surface tiny). The policy to serve is
//! addressed through the PR 4 registry string (`--policy mrsch`,
//! `--policy mrsch:cnn`), so the serving stack and the evaluation
//! harness agree on what a policy *is*.

use crate::batcher::BatcherConfig;
use crate::engine::{build_engine, EngineSpec};
use crate::loadgen::LoadgenConfig;
use crate::server;
use mrsch_eval::PolicySpec;
use std::time::Duration;

const USAGE: &str = "\
mrsch_cli serve [--mode stdin|tcp|loadtest] [options]

Serving:
  --mode MODE          stdin (default): protocol lines on stdin/stdout
                       tcp: accept connections on --addr
                       loadtest: seeded open-arrival self-test
  --addr HOST:PORT     TCP listen address       [127.0.0.1:7077]
  --policy SPEC        registry policy to serve (mrsch, mrsch:cnn) [mrsch]

Micro-batching:
  --batch N            flush at queue depth N   [8]
  --delay-us MICROS    ... or after the oldest request waits τ [2000]
  --queue-capacity N   bound before shedding    [1024]
  --workers N          batch worker threads     [1]

Engine (registry build):
  --window W           actions / scheduling window [10]
  --nodes N            compute nodes            [256]
  --bb N               burst-buffer units       [75]
  --seed S             init/training seed       [1]
  --train-episodes E   curriculum episodes (0 = untrained) [0]

Load test:
  --requests N         requests to issue        [200]
  --qps Q              mean open-arrival rate   [500]";

/// Parse flags and run the requested serving mode. Returns the summary
/// line to print, or a usage/parse error.
pub fn serve_main(args: &[String]) -> Result<String, String> {
    let mut mode = "stdin".to_string();
    let mut addr = "127.0.0.1:7077".to_string();
    let mut policy = "mrsch".to_string();
    let mut batcher = BatcherConfig::default();
    let mut spec = EngineSpec::default();
    let mut load = LoadgenConfig::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--mode" => mode = value("--mode")?,
            "--addr" => addr = value("--addr")?,
            "--policy" => policy = value("--policy")?,
            "--batch" => batcher.max_batch = parse(&value("--batch")?, "--batch")?,
            "--delay-us" => {
                batcher.max_delay = Duration::from_micros(parse(&value("--delay-us")?, "--delay-us")?)
            }
            "--queue-capacity" => {
                batcher.queue_capacity = parse(&value("--queue-capacity")?, "--queue-capacity")?
            }
            "--workers" => batcher.workers = parse(&value("--workers")?, "--workers")?,
            "--window" => spec.window = parse(&value("--window")?, "--window")?,
            "--nodes" => spec.nodes = parse(&value("--nodes")?, "--nodes")?,
            "--bb" => spec.bb = parse(&value("--bb")?, "--bb")?,
            "--seed" => {
                spec.seed = parse(&value("--seed")?, "--seed")?;
                load.seed = spec.seed;
            }
            "--train-episodes" => {
                spec.train_episodes = parse(&value("--train-episodes")?, "--train-episodes")?
            }
            "--requests" => load.requests = parse(&value("--requests")?, "--requests")?,
            "--qps" => load.target_qps = parse(&value("--qps")?, "--qps")?,
            "--help" | "-h" => return Ok(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }

    // Resolve the policy through the registry so `serve` and `evaluate`
    // can never disagree about a spec string.
    match PolicySpec::parse(&policy)? {
        PolicySpec::Mrsch(m) => spec.state_module = m.state_module,
        other => {
            return Err(format!(
                "policy '{}' is not a servable network (serve a DFP policy: mrsch, mrsch:cnn)",
                other.name()
            ))
        }
    }

    if !matches!(mode.as_str(), "stdin" | "tcp" | "loadtest") {
        return Err(format!("unknown mode '{mode}'\n\n{USAGE}"));
    }
    let engine = build_engine(&spec);
    match mode.as_str() {
        "stdin" => server::run_stdin(engine, batcher),
        "tcp" => server::run_tcp(engine, batcher, &addr),
        "loadtest" => {
            let report = server::run_loadtest(engine, batcher, &load);
            Ok(format!(
                "loadtest: {} requests at {:.0} qps target -> {} answered, {} dropped | \
                 latency p50={}us p95={}us p99={}us mean={}us max={}us | \
                 achieved {:.0} qps, mean batch {:.2}",
                load.requests,
                load.target_qps,
                report.total,
                report.dropped,
                report.p50_ns / 1_000,
                report.p95_ns / 1_000,
                report.p99_ns / 1_000,
                report.mean_ns / 1_000,
                report.max_ns / 1_000,
                report.qps,
                report.mean_batch,
            ))
        }
        _ => unreachable!("mode validated above"),
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn loadtest_mode_end_to_end() {
        let out = serve_main(&argv(
            "--mode loadtest --window 4 --nodes 16 --bb 8 --requests 32 --qps 2000 \
             --batch 4 --delay-us 500",
        ))
        .expect("loadtest runs");
        assert!(out.contains("32 answered, 0 dropped"), "report: {out}");
        assert!(out.contains("p99="), "report: {out}");
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(serve_main(&argv("--mode warp")).unwrap_err().contains("unknown mode"));
        assert!(serve_main(&argv("--frobnicate 3")).unwrap_err().contains("unknown flag"));
        assert!(serve_main(&argv("--batch")).unwrap_err().contains("needs a value"));
        assert!(serve_main(&argv("--policy fcfs")).unwrap_err().contains("not a servable"));
        assert!(serve_main(&argv("--help")).unwrap().contains("mrsch_cli serve"));
    }
}
