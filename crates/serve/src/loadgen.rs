//! Seeded open-arrival load generation.
//!
//! Closed-loop load tests (issue a request, wait, issue the next) hide
//! queueing: the client self-throttles exactly when the server slows
//! down, so tail latency looks flat no matter how overloaded the
//! service is. An **open** arrival process — requests land on a
//! schedule the server cannot push back on — is what exposes the
//! micro-batcher's real latency distribution.
//!
//! Arrival gaps come from [`mrsch_workload::StressConfig`]'s Poisson
//! process (the same seeded synthesizer the engine benchmarks replay),
//! rescaled from trace seconds to the target QPS. Request payloads are
//! seeded noise shaped to the served network's [`DfpConfig`]: latency
//! does not depend on weight values, so noise measures exactly what a
//! trained policy would.

use crate::protocol::Request;
use mrsch_dfp::DfpConfig;
use mrsch_workload::StressConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Load-test shape: how many requests, how fast, from which seed.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Total requests to issue.
    pub requests: usize,
    /// Mean arrival rate (requests per second).
    pub target_qps: f64,
    /// Seed for both payloads and arrival gaps.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self { requests: 200, target_qps: 500.0, seed: 1 }
    }
}

/// Synthesize `count` seeded requests shaped to `cfg`, with ids
/// `0..count`. Every request has at least one valid action.
pub fn synth_requests(cfg: &DfpConfig, count: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4c4f_4144_4745_4e21); // "LOADGEN!"
    (0..count as u64)
        .map(|id| {
            let vec = |n: usize, rng: &mut StdRng| {
                (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect::<Vec<f32>>()
            };
            let state = vec(cfg.state_dim, &mut rng);
            let meas = vec(cfg.measurement_dim, &mut rng);
            let goal = vec(cfg.measurement_dim, &mut rng);
            let mut valid: Vec<bool> =
                (0..cfg.num_actions).map(|_| rng.gen_bool(0.75)).collect();
            if !valid.iter().any(|&v| v) {
                valid[0] = true;
            }
            Request { id, state, meas, goal, valid }
        })
        .collect()
}

/// Poisson arrival offsets (from test start) for `count` requests at
/// `target_qps` mean rate. Pure function of its arguments.
pub fn arrival_offsets(count: usize, target_qps: f64, seed: u64) -> Vec<Duration> {
    assert!(target_qps > 0.0, "target_qps must be positive");
    if count == 0 {
        return Vec::new();
    }
    // Borrow the stress synthesizer's seeded Poisson process: its
    // integer submit times have a mean gap set by the utilization
    // model; rescale that gap to 1/target_qps seconds.
    let jobs = StressConfig::engine(count, vec![512, 64]).generate(seed);
    let span = jobs.last().unwrap().submit.saturating_sub(jobs[0].submit) as f64;
    let first = jobs[0].submit as f64;
    let scale = if span > 0.0 {
        // mean trace gap = span / (count - 1); target gap = 1/qps.
        (1.0 / target_qps) / (span / (count.saturating_sub(1).max(1)) as f64)
    } else {
        0.0
    };
    jobs.iter()
        .map(|j| Duration::from_secs_f64((j.submit as f64 - first) * scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DfpConfig {
        DfpConfig::scaled(12, 2, 4)
    }

    #[test]
    fn requests_are_seeded_and_shaped() {
        let reqs = synth_requests(&cfg(), 16, 7);
        assert_eq!(reqs.len(), 16);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.state.len(), cfg().state_dim);
            assert_eq!(r.meas.len(), 2);
            assert_eq!(r.goal.len(), 2);
            assert_eq!(r.valid.len(), 4);
            assert!(r.valid.iter().any(|&v| v), "at least one valid action");
        }
        assert_eq!(reqs, synth_requests(&cfg(), 16, 7), "same seed, same trace");
        assert_ne!(reqs, synth_requests(&cfg(), 16, 8), "seed matters");
    }

    #[test]
    fn offsets_are_nondecreasing_and_hit_target_rate() {
        let n = 2_000;
        let qps = 1_000.0;
        let offs = arrival_offsets(n, qps, 3);
        assert_eq!(offs.len(), n);
        assert_eq!(offs[0], Duration::ZERO);
        for w in offs.windows(2) {
            assert!(w[1] >= w[0], "nondecreasing arrivals");
        }
        let span = offs.last().unwrap().as_secs_f64();
        let rate = (n - 1) as f64 / span;
        assert!(
            (rate - qps).abs() / qps < 0.05,
            "rate {rate:.1} should approximate target {qps:.1}"
        );
        assert_eq!(offs, arrival_offsets(n, qps, 3), "pure function of (n, qps, seed)");
    }

    #[test]
    fn degenerate_counts_are_handled() {
        assert!(arrival_offsets(0, 100.0, 1).is_empty());
        assert_eq!(arrival_offsets(1, 100.0, 1), vec![Duration::ZERO]);
    }
}
