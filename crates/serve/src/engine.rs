//! The decision engine: a frozen DFP network answering requests.
//!
//! [`DecisionEngine`] owns a [`DfpNetwork`] (obtained from a trained
//! [`mrsch::Mrsch`] agent via its [`mrsch_dfp::PolicySnapshot`], i.e.
//! the same frozen-policy artifact the rollout workers use) and exposes
//! two entry points:
//!
//! * [`DecisionEngine::decide_one`] — one request, one fused-gemv
//!   forward pass (`m == 1` routes through the row-blocked gemv
//!   kernel);
//! * [`DecisionEngine::decide_batch`] — `B` coalesced requests, one
//!   packed-GEMM forward pass over a `B`-row input.
//!
//! The two are **bit-identical** per request: every output element of a
//! GEMM is a `mul_add` chain over its own row/column only, so stacking
//! rows can never change any row's result. `decide_batch` therefore
//! returns exactly what `B` separate `decide_one` calls would — the
//! micro-batcher trades latency for throughput without ever trading
//! away determinism (locked by tests here and in `batcher`).

use crate::protocol::Request;
use mrsch::prelude::{JobSource, Scenario, SimParams, SystemConfig, ThetaConfig, WorkloadSpec};
use mrsch_dfp::{greedy_from_scores, DfpConfig, DfpNetwork, PolicySnapshot, StateModuleKind};
use mrsch_eval::{default_training_curriculum, trained_mrsch, BuildContext};
use mrsch_linalg::Matrix;

/// A frozen decision-serving engine.
#[derive(Clone, Debug)]
pub struct DecisionEngine {
    net: DfpNetwork,
}

impl DecisionEngine {
    /// Wrap a frozen network.
    pub fn from_network(net: DfpNetwork) -> Self {
        Self { net }
    }

    /// Clone the network out of a rollout snapshot.
    pub fn from_snapshot(snap: &PolicySnapshot) -> Self {
        Self { net: snap.network().clone() }
    }

    /// The served network's configuration (request shape contract).
    pub fn config(&self) -> &DfpConfig {
        self.net.config()
    }

    /// Reject requests whose vector shapes don't match the network.
    pub fn check_request(&self, req: &Request) -> Result<(), String> {
        let cfg = self.config();
        let want = [
            ("state", req.state.len(), cfg.state_dim),
            ("meas", req.meas.len(), cfg.measurement_dim),
            ("goal", req.goal.len(), cfg.measurement_dim),
            ("valid", req.valid.len(), cfg.num_actions),
        ];
        for (name, got, expect) in want {
            if got != expect {
                return Err(format!("{name}: expected {expect} values, got {got}"));
            }
        }
        Ok(())
    }

    /// Decide one request (fused-gemv forward pass).
    pub fn decide_one(&self, req: &Request) -> Option<usize> {
        let scores = self.net.action_scores_shared(&req.state, &req.meas, &req.goal);
        greedy_from_scores(&scores, &req.valid)
    }

    /// Decide a coalesced micro-batch with a single packed-GEMM forward
    /// pass. Bit-identical, element for element, to calling
    /// [`Self::decide_one`] on each request.
    pub fn decide_batch(&self, reqs: &[&Request]) -> Vec<Option<usize>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let cfg = self.config();
        let stack = |dim: usize, get: fn(&Request) -> &[f32]| {
            let mut m = Matrix::zeros(reqs.len(), dim);
            for (r, req) in reqs.iter().enumerate() {
                m.row_mut(r).copy_from_slice(get(req));
            }
            m
        };
        let states = stack(cfg.state_dim, |r| &r.state);
        let meas = stack(cfg.measurement_dim, |r| &r.meas);
        let goals = stack(cfg.measurement_dim, |r| &r.goal);
        let scores = self.net.action_scores_batched(&states, &meas, &goals);
        scores
            .iter()
            .zip(reqs)
            .map(|(row, req)| greedy_from_scores(row, &req.valid))
            .collect()
    }
}

/// How to build a servable engine from scratch (registry-backed).
#[derive(Clone, Debug)]
pub struct EngineSpec {
    /// Scheduling-window size `W` = number of actions.
    pub window: usize,
    /// Compute nodes of the two-resource system.
    pub nodes: u64,
    /// Burst-buffer units of the two-resource system.
    pub bb: u64,
    /// Seed for network init and (optional) training.
    pub seed: u64,
    /// Curriculum episodes; `0` serves an untrained (but deterministic)
    /// network — enough for latency work, where weights don't matter.
    pub train_episodes: usize,
    /// Jobs per training episode (Theta-derived synthetic trace).
    pub train_jobs: usize,
    /// State-module architecture for the DFP network.
    pub state_module: StateModuleKind,
}

impl Default for EngineSpec {
    fn default() -> Self {
        Self {
            window: 10,
            nodes: 256,
            bb: 75,
            seed: 1,
            train_episodes: 0,
            train_jobs: 50,
            state_module: StateModuleKind::Mlp,
        }
    }
}

/// Build an engine through the PR 4 registry path: construct (and, when
/// `train_episodes > 0`, curriculum-train) an MRSch agent with
/// [`trained_mrsch`], then freeze its policy snapshot.
pub fn build_engine(spec: &EngineSpec) -> DecisionEngine {
    let system = SystemConfig::two_resource(spec.nodes, spec.bb);
    let params = SimParams::new(spec.window, true);
    let curriculum = (spec.train_episodes > 0).then(|| {
        let scenario = Scenario::new(
            "serve-train",
            JobSource::Theta(ThetaConfig {
                machine_nodes: spec.nodes,
                ..ThetaConfig::scaled(spec.train_jobs)
            }),
            WorkloadSpec::s1(),
            params,
        )
        .with_seed(spec.seed);
        default_training_curriculum(&scenario, spec.train_episodes)
    });
    let mut ctx = BuildContext::new(&system, params, spec.seed);
    if let Some(c) = &curriculum {
        ctx = ctx.with_training(c);
    }
    let mrsch = trained_mrsch(&ctx, spec.state_module);
    DecisionEngine::from_snapshot(&mrsch.agent().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_engine() -> DecisionEngine {
        build_engine(&EngineSpec { window: 4, nodes: 16, bb: 8, ..EngineSpec::default() })
    }

    fn random_request(cfg: &DfpConfig, rng: &mut StdRng, id: u64) -> Request {
        let vec = |n: usize, rng: &mut StdRng| {
            (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect::<Vec<f32>>()
        };
        let mut valid: Vec<bool> = (0..cfg.num_actions).map(|_| rng.gen_bool(0.7)).collect();
        valid[0] = true; // at least one valid action
        Request {
            id,
            state: vec(cfg.state_dim, rng),
            meas: vec(cfg.measurement_dim, rng),
            goal: vec(cfg.measurement_dim, rng),
            valid,
        }
    }

    #[test]
    fn batch_decisions_bit_identical_to_singles() {
        let engine = test_engine();
        let mut rng = StdRng::seed_from_u64(7);
        let reqs: Vec<Request> =
            (0..8).map(|i| random_request(engine.config(), &mut rng, i)).collect();
        for b in [1usize, 4, 8] {
            let chunk: Vec<&Request> = reqs[..b].iter().collect();
            let batched = engine.decide_batch(&chunk);
            let serial: Vec<Option<usize>> = chunk.iter().map(|r| engine.decide_one(r)).collect();
            assert_eq!(batched, serial, "batch size {b}");
        }
    }

    #[test]
    fn invalid_mask_yields_none_and_shapes_are_checked() {
        let engine = test_engine();
        let mut rng = StdRng::seed_from_u64(3);
        let mut req = random_request(engine.config(), &mut rng, 0);
        assert!(engine.check_request(&req).is_ok());
        for v in req.valid.iter_mut() {
            *v = false;
        }
        assert_eq!(engine.decide_one(&req), None);
        req.state.push(0.0);
        assert!(engine.check_request(&req).is_err());
    }

    #[test]
    fn decisions_are_deterministic_across_engine_builds() {
        let spec = EngineSpec { window: 4, nodes: 16, bb: 8, ..EngineSpec::default() };
        let (a, b) = (build_engine(&spec), build_engine(&spec));
        let mut rng = StdRng::seed_from_u64(11);
        let req = random_request(a.config(), &mut rng, 0);
        assert_eq!(a.decide_one(&req), b.decide_one(&req));
    }
}
