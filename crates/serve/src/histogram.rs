//! HDR-style log-bucketed latency histogram.
//!
//! Fixed memory (~8 KiB), O(1) record, and percentile queries with a
//! bounded **relative** error: each power-of-two range is split into 16
//! linear sub-buckets, so any reported quantile is within 1/16 (6.25 %)
//! of the true value. That is the textbook trade-off for latency
//! telemetry — exact enough for p50/p95/p99 reporting, cheap enough to
//! sit on the serving hot path without perturbing what it measures.

/// Linear sub-buckets per power-of-two range (16 → ≤ 6.25 % error).
const SUB: usize = 16;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 4;
/// Bucket count: values `< SUB` get exact unit buckets, then one group
/// of 16 per exponent 4..=63.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A latency histogram over `u64` values (nanoseconds by convention).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (exp - SUB_BITS)) & (SUB as u64 - 1);
        SUB + (exp - SUB_BITS) as usize * SUB + sub as usize
    }

    /// Inclusive upper bound of a bucket — quantiles report this, so
    /// the histogram never *understates* a latency.
    fn bucket_upper(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let group = (idx - SUB) / SUB;
        let sub = ((idx - SUB) % SUB) as u64;
        let exp = group as u32 + SUB_BITS;
        let width = 1u64 << (exp - SUB_BITS);
        (1u64 << exp) + sub * width + (width - 1)
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `p`-th percentile (`0.0..=100.0`), within 1/16 relative
    /// error, clamped to the exact observed extremes. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(50.0), 7);
        assert_eq!(h.percentile(100.0), 15);
    }

    #[test]
    fn percentiles_within_relative_error_bound() {
        let mut h = LatencyHistogram::new();
        // Values spanning several decades.
        for i in 1..=100_000u64 {
            h.record(i * 17);
        }
        for p in [10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = ((p / 100.0) * 100_000f64).ceil() as u64 * 17;
            let got = h.percentile(p);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "p{p}: got {got}, exact {exact}, err {err:.4}");
            assert!(got >= exact, "upper-bound convention: must never understate");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 900, 900, 1_000_000, 42] {
            h.record(v);
        }
        let mut last = 0;
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let q = h.percentile(p);
            assert!(q >= last, "p{p} regressed: {q} < {last}");
            assert!(q >= h.min() && q <= h.max());
            last = q;
        }
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn bucket_mapping_round_trips_bounds() {
        // Every bucket's upper bound maps back into that bucket.
        for idx in 0..BUCKETS {
            let hi = LatencyHistogram::bucket_upper(idx);
            assert_eq!(LatencyHistogram::bucket_of(hi), idx, "upper {hi} of bucket {idx}");
        }
    }
}
