//! The line-delimited decision protocol.
//!
//! One request per line, fields separated by `;`:
//!
//! ```text
//! id;state_csv;meas_csv;goal_csv;valid_bits
//! ```
//!
//! * `id` — caller-chosen `u64`, echoed on the response;
//! * `state_csv` / `meas_csv` / `goal_csv` — comma-separated `f32`
//!   vectors (the encoder's state, the current measurement vector, the
//!   goal vector — exactly the inputs of `DfpNetwork::action_scores`);
//! * `valid_bits` — one `0`/`1` per action (the window validity mask).
//!
//! Responses are `id;action` (the chosen window slot) or `id;none`
//! (no valid action). The format is transport-agnostic: the same lines
//! flow over stdin/stdout, a TCP connection, or the in-process load
//! generator. Text keeps the service debuggable with a shell
//! one-liner; parsing is off the scoring hot path (it happens on the
//! connection thread, before the micro-batch queue).

/// One decision request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Encoded scheduler state.
    pub state: Vec<f32>,
    /// Current measurement vector.
    pub meas: Vec<f32>,
    /// Goal vector (the per-decision objective weights).
    pub goal: Vec<f32>,
    /// Per-action validity mask.
    pub valid: Vec<bool>,
}

fn parse_f32_csv(field: &str, what: &str) -> Result<Vec<f32>, String> {
    if field.trim().is_empty() {
        return Err(format!("{what}: empty vector"));
    }
    field
        .split(',')
        .map(|t| t.trim().parse::<f32>().map_err(|_| format!("{what}: bad float '{t}'")))
        .collect()
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut parts = line.trim().split(';');
    let mut field = |what: &str| parts.next().ok_or_else(|| format!("missing field: {what}"));
    let id: u64 = field("id")?
        .trim()
        .parse()
        .map_err(|_| "id: not an unsigned integer".to_string())?;
    let state = parse_f32_csv(field("state")?, "state")?;
    let meas = parse_f32_csv(field("meas")?, "meas")?;
    let goal = parse_f32_csv(field("goal")?, "goal")?;
    let bits = field("valid")?.trim();
    if bits.is_empty() {
        return Err("valid: empty mask".into());
    }
    let valid = bits
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("valid: bad bit '{other}'")),
        })
        .collect::<Result<Vec<bool>, String>>()?;
    if parts.next().is_some() {
        return Err("trailing fields after valid mask".into());
    }
    Ok(Request { id, state, meas, goal, valid })
}

/// Render a request as one protocol line (inverse of [`parse_request`]).
pub fn format_request(req: &Request) -> String {
    let csv = |v: &[f32]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",");
    let bits: String = req.valid.iter().map(|&b| if b { '1' } else { '0' }).collect();
    format!("{};{};{};{};{}", req.id, csv(&req.state), csv(&req.meas), csv(&req.goal), bits)
}

/// Render a response line: `id;action` or `id;none`.
pub fn format_response(id: u64, action: Option<usize>) -> String {
    match action {
        Some(a) => format!("{id};{a}"),
        None => format!("{id};none"),
    }
}

/// Parse a response line (the load generator checks echoes with this).
pub fn parse_response(line: &str) -> Result<(u64, Option<usize>), String> {
    let (id, action) = line.trim().split_once(';').ok_or("response: missing ';'")?;
    let id: u64 = id.trim().parse().map_err(|_| "response id: not a number".to_string())?;
    let action = match action.trim() {
        "none" => None,
        a => Some(a.parse::<usize>().map_err(|_| format!("response action: bad '{a}'"))?),
    };
    Ok((id, action))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request {
            id: 42,
            state: vec![0.5, -1.25, 3.0],
            meas: vec![1.0, 0.0],
            goal: vec![0.25, 0.75],
            valid: vec![true, false, true],
        }
    }

    #[test]
    fn request_round_trips() {
        let r = req();
        let line = format_request(&r);
        assert_eq!(line, "42;0.5,-1.25,3;1,0;0.25,0.75;101");
        assert_eq!(parse_request(&line).unwrap(), r);
    }

    #[test]
    fn response_round_trips() {
        assert_eq!(parse_response(&format_response(7, Some(3))).unwrap(), (7, Some(3)));
        assert_eq!(parse_response(&format_response(9, None)).unwrap(), (9, None));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",                            // nothing
            "x;1;1;1;1",                   // bad id
            "1;;1;1;1",                    // empty state
            "1;1.0;1.0;1.0",               // missing valid mask
            "1;1.0;1.0;1.0;",              // empty valid mask
            "1;1.0;1.0;1.0;12",            // bad bit
            "1;1.0;nan?;1.0;1",            // bad float
            "1;1.0;1.0;1.0;1;extra",       // trailing field
        ] {
            assert!(parse_request(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let r = parse_request(" 3 ; 1.0 , 2.0 ; 0.5 ; 0.5 ; 10 \n").unwrap();
        assert_eq!(r.id, 3);
        assert_eq!(r.state, vec![1.0, 2.0]);
        assert_eq!(r.valid, vec![true, false]);
    }
}
