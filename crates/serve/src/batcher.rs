//! Bounded micro-batching queue with a worker pool.
//!
//! Requests land in a bounded queue; a worker flushes a batch when
//! either the queue depth reaches `max_batch` **or** the oldest queued
//! request has waited `max_delay` (the classic depth-`B`-or-deadline-τ
//! micro-batching policy). Each flush is one
//! [`DecisionEngine::decide_batch`] call — one packed GEMM amortized
//! over the whole batch.
//!
//! Because batched and single decisions are bit-identical (see
//! [`crate::engine`]), the *decisions* served are a pure function of
//! the requests: flush depth, deadline timing, and worker count only
//! move latency/throughput, never outputs. The
//! `flush_depth_never_changes_decisions` test locks this.
//!
//! Backpressure is explicit: [`MicroBatcher::submit`] returns `false`
//! (and counts a drop) instead of blocking when the queue is full, so
//! an overloaded server degrades by shedding load, not by stalling its
//! accept loop.

use crate::engine::DecisionEngine;
use crate::protocol::Request;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// ... or as soon as the oldest queued request is this old.
    pub max_delay: Duration,
    /// Queue bound; submits beyond it are dropped (shed, not blocked).
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 1,
        }
    }
}

/// One answered request, with the timing the histogram needs.
#[derive(Clone, Debug)]
pub struct Reply {
    /// Echoed request id.
    pub id: u64,
    /// The decision (`None` when no action was valid).
    pub action: Option<usize>,
    /// When the request entered the queue.
    pub submitted: Instant,
    /// When the decision was made.
    pub completed: Instant,
    /// Size of the flush this request rode in (observability).
    pub batch_size: usize,
}

struct Pending {
    req: Request,
    submitted: Instant,
    tx: Sender<Reply>,
}

struct Inner {
    engine: DecisionEngine,
    cfg: BatcherConfig,
    queue: Mutex<VecDeque<Pending>>,
    notify: Condvar,
    shutdown: AtomicBool,
    dropped: AtomicU64,
}

/// The micro-batching front end around a [`DecisionEngine`].
pub struct MicroBatcher {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Spawn the worker pool.
    pub fn start(engine: DecisionEngine, cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        assert!(cfg.workers >= 1, "workers must be >= 1");
        let inner = Arc::new(Inner {
            engine,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mrsch-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn batcher worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Enqueue a request; its [`Reply`] arrives on `reply_tx`. Returns
    /// `false` (and counts a drop) when the queue is at capacity.
    pub fn submit(&self, req: Request, reply_tx: Sender<Reply>) -> bool {
        let mut queue = self.inner.queue.lock().unwrap();
        if queue.len() >= self.inner.cfg.queue_capacity {
            drop(queue);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        queue.push_back(Pending { req, submitted: Instant::now(), tx: reply_tx });
        drop(queue);
        self.inner.notify.notify_one();
        true
    }

    /// Requests shed because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The engine behind the queue (shape checks happen before submit).
    pub fn engine(&self) -> &DecisionEngine {
        &self.inner.engine
    }

    /// Drain the queue, stop the workers, and join them.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.notify.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut queue = inner.queue.lock().unwrap();
    loop {
        // Wait for work (or shutdown with an empty queue).
        while queue.is_empty() {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            queue = inner.notify.wait(queue).unwrap();
        }
        // Work is queued: wait for depth B or the oldest request's
        // deadline. Both the deadline and emptiness must be re-checked
        // after every wake-up — another worker may have drained the
        // queue while we slept.
        loop {
            if queue.len() >= inner.cfg.max_batch || inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Some(front) = queue.front() else { break };
            let deadline = front.submitted + inner.cfg.max_delay;
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (q, _timeout) = inner.notify.wait_timeout(queue, deadline - now).unwrap();
            queue = q;
            if queue.is_empty() {
                break;
            }
        }
        if queue.is_empty() {
            continue;
        }
        let take = queue.len().min(inner.cfg.max_batch);
        let batch: Vec<Pending> = queue.drain(..take).collect();
        drop(queue);

        let reqs: Vec<&Request> = batch.iter().map(|p| &p.req).collect();
        let actions = inner.engine.decide_batch(&reqs);
        let completed = Instant::now();
        for (pending, action) in batch.into_iter().zip(actions) {
            // A closed receiver just means the client went away.
            let _ = pending.tx.send(Reply {
                id: pending.req.id,
                action,
                submitted: pending.submitted,
                completed,
                batch_size: take,
            });
        }
        queue = inner.queue.lock().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineSpec};
    use crate::loadgen::synth_requests;
    use std::collections::BTreeMap;
    use std::sync::mpsc;

    fn collect_decisions(
        engine: &DecisionEngine,
        reqs: &[Request],
        cfg: BatcherConfig,
    ) -> BTreeMap<u64, Option<usize>> {
        let batcher = MicroBatcher::start(engine.clone(), cfg);
        let (tx, rx) = mpsc::channel();
        for req in reqs {
            assert!(batcher.submit(req.clone(), tx.clone()), "queue should not shed");
        }
        let mut out = BTreeMap::new();
        for _ in 0..reqs.len() {
            let reply = rx.recv().expect("reply");
            out.insert(reply.id, reply.action);
        }
        batcher.shutdown();
        out
    }

    #[test]
    fn flush_depth_never_changes_decisions() {
        let engine = build_engine(&EngineSpec { window: 4, nodes: 16, bb: 8, ..Default::default() });
        let reqs = synth_requests(engine.config(), 24, 99);
        let serial: BTreeMap<u64, Option<usize>> =
            reqs.iter().map(|r| (r.id, engine.decide_one(r))).collect();
        for max_batch in [1usize, 4, 8] {
            let got = collect_decisions(
                &engine,
                &reqs,
                BatcherConfig { max_batch, max_delay: Duration::from_millis(1), ..Default::default() },
            );
            assert_eq!(got, serial, "flush depth {max_batch} changed a decision");
        }
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let engine = build_engine(&EngineSpec { window: 4, nodes: 16, bb: 8, ..Default::default() });
        let reqs = synth_requests(engine.config(), 3, 5);
        // Depth 64 can never fill from 3 requests: only τ can flush.
        let cfg = BatcherConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            ..Default::default()
        };
        let batcher = MicroBatcher::start(engine.clone(), cfg);
        let (tx, rx) = mpsc::channel();
        for req in &reqs {
            assert!(batcher.submit(req.clone(), tx.clone()));
        }
        for _ in 0..reqs.len() {
            let reply = rx.recv_timeout(Duration::from_secs(5)).expect("deadline flush");
            assert!(reply.batch_size <= reqs.len());
        }
        assert_eq!(batcher.dropped(), 0);
        batcher.shutdown();
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let engine = build_engine(&EngineSpec { window: 4, nodes: 16, bb: 8, ..Default::default() });
        let reqs = synth_requests(engine.config(), 4, 1);
        let cfg = BatcherConfig { queue_capacity: 2, max_delay: Duration::from_secs(5), ..Default::default() };
        let batcher = MicroBatcher::start(engine, cfg);
        // Stuff the queue faster than the (deadline-gated) worker drains.
        let (tx, _rx) = mpsc::channel();
        let mut accepted = 0;
        for req in &reqs {
            if batcher.submit(req.clone(), tx.clone()) {
                accepted += 1;
            }
        }
        assert!(accepted >= 2, "capacity-2 queue must accept at least 2");
        assert_eq!(batcher.dropped() + accepted, reqs.len() as u64);
        batcher.shutdown();
    }
}
