//! Serving loops: stdin/stdout, TCP, and the in-process load test.
//!
//! All transports share one pump: read protocol lines, shape-check,
//! submit to the [`MicroBatcher`], and stream responses back as replies
//! arrive (a dedicated writer thread per stream, so slow clients never
//! stall the batch queue). The TCP listener multiplexes any number of
//! connections onto **one** shared batcher — concurrent clients are
//! exactly what gives the micro-batcher batches to coalesce.
//!
//! [`run_loadtest`] closes the loop for CI: a seeded open-arrival
//! request schedule ([`crate::loadgen`]) is pushed through a batcher
//! and the reply stream is folded into a [`LatencyHistogram`], yielding
//! p50/p95/p99/QPS for the bench suite and the README numbers.

use crate::batcher::{BatcherConfig, MicroBatcher, Reply};
use crate::engine::DecisionEngine;
use crate::histogram::LatencyHistogram;
use crate::loadgen::{arrival_offsets, synth_requests, LoadgenConfig};
use crate::protocol::{format_response, parse_request};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// What one pump (stream) saw.
struct PumpStats {
    submitted: u64,
    malformed: u64,
    shed: u64,
    hist: LatencyHistogram,
}

/// Read lines from `input`, submit to `batcher`, stream responses to
/// `output` as they complete. Returns once `input` hits EOF and every
/// accepted request has been answered.
fn pump<R: BufRead, W: Write + Send + 'static>(
    batcher: &MicroBatcher,
    input: R,
    mut output: W,
) -> PumpStats {
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer = std::thread::spawn(move || {
        let mut hist = LatencyHistogram::new();
        for reply in rx {
            // batch_size == 0 marks synthetic replies (shape errors,
            // shed requests) — answered, but not a measured decision.
            if reply.batch_size > 0 {
                let ns = reply.completed.duration_since(reply.submitted).as_nanos() as u64;
                hist.record(ns);
            }
            let _ = writeln!(output, "{}", format_response(reply.id, reply.action));
            let _ = output.flush();
        }
        hist
    });

    let mut stats = PumpStats { submitted: 0, malformed: 0, shed: 0, hist: LatencyHistogram::new() };
    let refuse = |id: u64, tx: &mpsc::Sender<Reply>| {
        let now = Instant::now();
        let _ = tx.send(Reply { id, action: None, submitted: now, completed: now, batch_size: 0 });
    };
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_request(&line) {
            Ok(req) => req,
            Err(err) => {
                stats.malformed += 1;
                eprintln!("mrsch-serve: malformed request: {err}");
                continue;
            }
        };
        if let Err(err) = batcher.engine().check_request(&req) {
            stats.malformed += 1;
            eprintln!("mrsch-serve: request {}: {err}", req.id);
            refuse(req.id, &tx);
            continue;
        }
        let id = req.id;
        if batcher.submit(req, tx.clone()) {
            stats.submitted += 1;
        } else {
            stats.shed += 1;
            refuse(id, &tx);
        }
    }
    // Close our sender; in-flight requests still hold clones, so the
    // writer drains exactly until the last accepted reply.
    drop(tx);
    stats.hist = writer.join().expect("response writer");
    stats
}

fn summary(stats: &PumpStats) -> String {
    let h = &stats.hist;
    format!(
        "served {} decisions ({} malformed, {} shed) \
         latency p50={}us p95={}us p99={}us max={}us",
        stats.submitted,
        stats.malformed,
        stats.shed,
        h.percentile(50.0) / 1_000,
        h.percentile(95.0) / 1_000,
        h.percentile(99.0) / 1_000,
        h.max() / 1_000,
    )
}

/// Serve one byte stream (the transport-agnostic core; stdin and TCP
/// both land here). Returns a human-readable summary line.
pub fn serve_stream<R: BufRead, W: Write + Send + 'static>(
    engine: DecisionEngine,
    cfg: BatcherConfig,
    input: R,
    output: W,
) -> String {
    let batcher = MicroBatcher::start(engine, cfg);
    let stats = pump(&batcher, input, output);
    batcher.shutdown();
    summary(&stats)
}

/// Serve requests from stdin, responses to stdout, until EOF. The
/// summary goes to stderr so piped output stays machine-parseable.
pub fn run_stdin(engine: DecisionEngine, cfg: BatcherConfig) -> Result<String, String> {
    let line = serve_stream(engine, cfg, std::io::stdin().lock(), std::io::stdout());
    Ok(line)
}

/// Accept connections on `listener`, multiplexing all of them onto one
/// shared batcher. `max_conns` bounds the accept loop (for tests and
/// drills); `None` serves forever.
pub fn serve_listener(
    listener: TcpListener,
    engine: DecisionEngine,
    cfg: BatcherConfig,
    max_conns: Option<usize>,
) -> Result<String, String> {
    let batcher = Arc::new(MicroBatcher::start(engine, cfg));
    let mut handles = Vec::new();
    let mut served = 0usize;
    for conn in listener.incoming() {
        let stream = conn.map_err(|e| format!("accept: {e}"))?;
        let write_half = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
        let batcher = Arc::clone(&batcher);
        handles.push(std::thread::spawn(move || {
            let stats = pump(&batcher, BufReader::new(stream), write_half);
            (stats.submitted, stats.malformed, stats.shed)
        }));
        served += 1;
        if max_conns.is_some_and(|m| served >= m) {
            break;
        }
    }
    let mut totals = (0u64, 0u64, 0u64);
    for h in handles {
        let (s, m, d) = h.join().expect("connection pump");
        totals = (totals.0 + s, totals.1 + m, totals.2 + d);
    }
    match Arc::try_unwrap(batcher) {
        Ok(b) => b.shutdown(),
        Err(_) => unreachable!("all connection threads joined"),
    }
    Ok(format!(
        "served {} connections: {} decisions ({} malformed, {} shed)",
        served, totals.0, totals.1, totals.2
    ))
}

/// Bind `addr` and serve TCP connections until interrupted.
pub fn run_tcp(engine: DecisionEngine, cfg: BatcherConfig, addr: &str) -> Result<String, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    eprintln!("mrsch-serve: listening on {local}");
    serve_listener(listener, engine, cfg, None)
}

/// The outcome of a seeded open-arrival load test.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Requests answered by the engine.
    pub total: u64,
    /// Requests shed at the queue (must be 0 for a passing CI run).
    pub dropped: u64,
    /// Median end-to-end latency (submit → decision), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: u64,
    /// Worst observed latency, nanoseconds.
    pub max_ns: u64,
    /// Achieved throughput over the whole run.
    pub qps: f64,
    /// Mean flush depth — how much coalescing the arrival rate induced.
    pub mean_batch: f64,
}

/// Push a seeded open-arrival schedule through a micro-batcher and
/// fold the replies into a latency report.
pub fn run_loadtest(
    engine: DecisionEngine,
    cfg: BatcherConfig,
    lg: &LoadgenConfig,
) -> LoadReport {
    let reqs = synth_requests(engine.config(), lg.requests, lg.seed);
    let offsets = arrival_offsets(lg.requests, lg.target_qps, lg.seed);
    let batcher = MicroBatcher::start(engine, cfg);

    let (tx, rx) = mpsc::channel::<Reply>();
    let collector = std::thread::spawn(move || {
        let mut hist = LatencyHistogram::new();
        let mut batch_sum = 0u64;
        for reply in rx {
            hist.record(reply.completed.duration_since(reply.submitted).as_nanos() as u64);
            batch_sum += reply.batch_size as u64;
        }
        (hist, batch_sum)
    });

    let start = Instant::now();
    for (req, offset) in reqs.into_iter().zip(offsets) {
        let elapsed = start.elapsed();
        if elapsed < offset {
            std::thread::sleep(offset - elapsed);
        }
        // A shed request sends no reply; the drop counter records it.
        let _ = batcher.submit(req, tx.clone());
    }
    drop(tx);
    let dropped = batcher.dropped();
    batcher.shutdown();
    let wall = start.elapsed();
    let (hist, batch_sum) = collector.join().expect("reply collector");

    let total = hist.count();
    LoadReport {
        total,
        dropped,
        p50_ns: hist.percentile(50.0),
        p95_ns: hist.percentile(95.0),
        p99_ns: hist.percentile(99.0),
        mean_ns: hist.mean(),
        max_ns: hist.max(),
        qps: total as f64 / wall.as_secs_f64().max(1e-9),
        mean_batch: if total == 0 { 0.0 } else { batch_sum as f64 / total as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineSpec};
    use crate::protocol::{format_request, parse_response};
    use std::io::Cursor;
    use std::net::TcpStream;
    use std::sync::Mutex;
    use std::time::Duration;

    fn test_engine() -> DecisionEngine {
        build_engine(&EngineSpec { window: 4, nodes: 16, bb: 8, ..EngineSpec::default() })
    }

    /// A Write sink tests can read back after the writer thread exits.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn responses(buf: &SharedBuf) -> Vec<(u64, Option<usize>)> {
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| parse_response(l).unwrap())
            .collect()
    }

    #[test]
    fn stream_serving_answers_every_request() {
        let engine = test_engine();
        let reqs = synth_requests(engine.config(), 12, 21);
        let expected: Vec<(u64, Option<usize>)> =
            reqs.iter().map(|r| (r.id, engine.decide_one(r))).collect();
        let input: String =
            reqs.iter().map(|r| format_request(r) + "\n").collect();
        let out = SharedBuf::default();
        let line = serve_stream(
            engine,
            BatcherConfig { max_delay: Duration::from_millis(1), ..Default::default() },
            Cursor::new(input),
            out.clone(),
        );
        assert!(line.contains("served 12 decisions"), "summary: {line}");
        let mut got = responses(&out);
        got.sort_unstable();
        assert_eq!(got, expected, "every request answered with the serial decision");
    }

    #[test]
    fn malformed_and_misshapen_lines_do_not_kill_the_stream() {
        let engine = test_engine();
        let reqs = synth_requests(engine.config(), 2, 33);
        let input = format!(
            "not-a-request\n{}\n7;1.0;1.0;1.0;1\n{}\n",
            format_request(&reqs[0]),
            format_request(&reqs[1]),
        );
        let out = SharedBuf::default();
        let line = serve_stream(engine, BatcherConfig::default(), Cursor::new(input), out.clone());
        assert!(line.contains("served 2 decisions (2 malformed"), "summary: {line}");
        let got = responses(&out);
        // The misshapen-but-parseable request is refused with `none`.
        assert!(got.contains(&(7, None)), "shape-checked refusal: {got:?}");
        assert_eq!(got.len(), 3, "two decisions + one refusal");
    }

    #[test]
    fn tcp_round_trip_matches_serial_decisions() {
        let engine = test_engine();
        let reqs = synth_requests(engine.config(), 8, 55);
        let expected: Vec<(u64, Option<usize>)> =
            reqs.iter().map(|r| (r.id, engine.decide_one(r))).collect();

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_listener(listener, engine, BatcherConfig::default(), Some(1))
        });

        let mut conn = TcpStream::connect(addr).expect("connect");
        for r in &reqs {
            writeln!(conn, "{}", format_request(r)).unwrap();
        }
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut got: Vec<(u64, Option<usize>)> = BufReader::new(conn)
            .lines()
            .map(|l| parse_response(&l.unwrap()).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected);

        let summary = server.join().unwrap().expect("server ok");
        assert!(summary.contains("served 1 connections"), "summary: {summary}");
    }

    #[test]
    fn loadtest_answers_all_requests_with_zero_drops() {
        let engine = test_engine();
        let report = run_loadtest(
            engine,
            BatcherConfig { max_delay: Duration::from_micros(500), ..Default::default() },
            &LoadgenConfig { requests: 64, target_qps: 2_000.0, seed: 9 },
        );
        assert_eq!(report.total, 64);
        assert_eq!(report.dropped, 0);
        assert!(report.p50_ns > 0 && report.p99_ns >= report.p50_ns);
        assert!(report.max_ns >= report.p99_ns);
        assert!(report.qps > 0.0);
        assert!(report.mean_batch >= 1.0);
    }
}
