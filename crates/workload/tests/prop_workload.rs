//! Property-based tests of the workload pipeline: every generator, at
//! every scale and seed, produces jobs that are valid for the target
//! system and preserve the suite's declared structure.

use mrsch_workload::jobset::{curriculum, sampled_jobset, CurriculumOrder};
use mrsch_workload::split::chronological_split;
use mrsch_workload::suite::WorkloadSpec;
use mrsch_workload::theta::ThetaConfig;
use mrsim::resources::SystemConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_suite_workload_validates_on_its_system(
        seed in 0u64..10_000,
        nodes in 16u64..256,
        bb in 8u64..64,
        njobs in 20usize..120,
    ) {
        let cfg = ThetaConfig { machine_nodes: nodes, ..ThetaConfig::scaled(njobs) };
        let trace = cfg.generate(seed);
        let base = SystemConfig::two_resource(nodes, bb);
        let mut specs = WorkloadSpec::two_resource_suite();
        specs.extend(WorkloadSpec::three_resource_suite());
        for spec in specs {
            let system = spec.system_for(&base);
            for job in spec.build(&trace, &system, seed ^ 1) {
                prop_assert!(system.validate_job(&job).is_ok(),
                    "{}: job {:?} invalid", spec.name, job);
                prop_assert!(job.demands[0] >= 1, "jobs always need a node");
            }
        }
    }

    #[test]
    fn trace_submit_times_sorted_and_jobs_bounded(
        seed in 0u64..10_000,
        nodes in 16u64..512,
    ) {
        let cfg = ThetaConfig { machine_nodes: nodes, ..ThetaConfig::scaled(80) };
        let trace = cfg.generate(seed);
        prop_assert_eq!(trace.len(), 80);
        prop_assert!(trace.windows(2).all(|w| w[0].submit <= w[1].submit));
        for j in &trace {
            prop_assert!(j.nodes >= 1 && j.nodes <= nodes);
            prop_assert!(j.estimate >= j.runtime);
            prop_assert!(j.runtime >= cfg.min_runtime && j.runtime <= cfg.max_runtime);
        }
    }

    #[test]
    fn split_partitions_and_rebases(
        seed in 0u64..10_000,
        train in 0.2f64..0.7,
        val in 0.05f64..0.2,
    ) {
        let trace = ThetaConfig::scaled(150).generate(seed);
        let s = chronological_split(&trace, train, val);
        prop_assert_eq!(
            s.train.len() + s.validation.len() + s.test.len(),
            trace.len()
        );
        for slice in [&s.train, &s.validation, &s.test] {
            if let Some(first) = slice.first() {
                prop_assert_eq!(first.submit, 0, "rebased");
            }
            prop_assert!(slice.windows(2).all(|w| w[0].submit <= w[1].submit));
        }
    }

    #[test]
    fn sampled_jobsets_only_reshape_arrivals(
        seed in 0u64..10_000,
        n in 10usize..80,
    ) {
        let trace = ThetaConfig::scaled(60).generate(seed);
        let sampled = sampled_jobset(&trace, n, seed ^ 2);
        prop_assert_eq!(sampled.len(), n);
        for j in &sampled {
            prop_assert!(
                trace.iter().any(|o| o.runtime == j.runtime
                    && o.estimate == j.estimate
                    && o.nodes == j.nodes),
                "sampled job shapes must come from the trace"
            );
        }
    }

    #[test]
    fn curriculum_is_deterministic_and_phase_ordered(
        seed in 0u64..10_000,
        order_idx in 0usize..6,
    ) {
        let trace = ThetaConfig::scaled(90).generate(seed);
        let cfg = ThetaConfig::scaled(90);
        let order = CurriculumOrder::all()[order_idx];
        let a = curriculum(order, &trace, &cfg, 2, 30, seed);
        let b = curriculum(order, &trace, &cfg, 2, 30, seed);
        prop_assert_eq!(&a, &b);
        // Phases appear in the order's sequence, 2 sets each.
        let kinds: Vec<_> = a.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(kinds.len(), 6);
        prop_assert_eq!(kinds[0], order.0[0]);
        prop_assert_eq!(kinds[1], order.0[0]);
        prop_assert_eq!(kinds[2], order.0[1]);
        prop_assert_eq!(kinds[4], order.0[2]);
    }
}
