//! Chronological train/validation/test splitting (§IV-A).
//!
//! The paper splits its five-month log chronologically: the first
//! 3.5 months train the agent, the next two weeks validate, and the
//! remainder is held out for inference/testing. Expressed as fractions of
//! the trace *time span* that is ≈ 0.70 / 0.10 / 0.20.

use crate::theta::TraceJob;

/// A chronological split of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Split {
    /// Training slice (earliest), rebased to start at 0.
    pub train: Vec<TraceJob>,
    /// Validation slice, rebased to start at 0.
    pub validation: Vec<TraceJob>,
    /// Test slice (latest), rebased to start at 0.
    pub test: Vec<TraceJob>,
}

/// Split `trace` by time: jobs submitted in the first `train_frac` of the
/// span train, the next `val_frac` validate, the rest test. Each slice is
/// rebased so its first submission is at time 0.
///
/// # Panics
/// Panics unless `0 < train_frac`, `0 <= val_frac` and
/// `train_frac + val_frac < 1`.
pub fn chronological_split(trace: &[TraceJob], train_frac: f64, val_frac: f64) -> Split {
    assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
    if trace.is_empty() {
        return Split { train: vec![], validation: vec![], test: vec![] };
    }
    let t0 = trace.first().unwrap().submit as f64;
    let t1 = trace.last().unwrap().submit as f64;
    let span = (t1 - t0).max(1.0);
    let train_end = t0 + span * train_frac;
    let val_end = t0 + span * (train_frac + val_frac);
    let mut train = Vec::new();
    let mut validation = Vec::new();
    let mut test = Vec::new();
    for &j in trace {
        let t = j.submit as f64;
        if t < train_end {
            train.push(j);
        } else if t < val_end {
            validation.push(j);
        } else {
            test.push(j);
        }
    }
    Split { train: rebase(train), validation: rebase(validation), test: rebase(test) }
}

/// The paper's own proportions: 3.5 months / 2 weeks / remainder of a
/// 5-month trace ≈ 0.70 / 0.093.
pub fn paper_split(trace: &[TraceJob]) -> Split {
    chronological_split(trace, 3.5 / 5.0, 0.5 / 5.0 * 14.0 / 15.0)
}

fn rebase(mut jobs: Vec<TraceJob>) -> Vec<TraceJob> {
    if let Some(t0) = jobs.first().map(|j| j.submit) {
        for j in &mut jobs {
            j.submit -= t0;
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaConfig;

    fn trace() -> Vec<TraceJob> {
        ThetaConfig::scaled(3000).generate(31)
    }

    #[test]
    fn split_partitions_whole_trace() {
        let t = trace();
        let s = chronological_split(&t, 0.7, 0.1);
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), t.len());
        assert!(!s.train.is_empty() && !s.validation.is_empty() && !s.test.is_empty());
    }

    #[test]
    fn split_is_chronological_with_expected_mass() {
        let t = trace();
        let s = chronological_split(&t, 0.7, 0.1);
        let frac_train = s.train.len() as f64 / t.len() as f64;
        // Arrivals are roughly uniform over the span.
        assert!((frac_train - 0.7).abs() < 0.08, "train mass {frac_train}");
    }

    #[test]
    fn slices_rebased_to_zero() {
        let t = trace();
        let s = chronological_split(&t, 0.6, 0.2);
        for slice in [&s.train, &s.validation, &s.test] {
            assert_eq!(slice.first().unwrap().submit, 0);
            assert!(slice.windows(2).all(|w| w[0].submit <= w[1].submit));
        }
    }

    #[test]
    fn empty_trace_is_safe() {
        let s = chronological_split(&[], 0.5, 0.2);
        assert!(s.train.is_empty() && s.validation.is_empty() && s.test.is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_fractions_panic() {
        chronological_split(&trace(), 0.8, 0.3);
    }

    #[test]
    fn paper_split_shapes() {
        let t = trace();
        let s = paper_split(&t);
        assert!(s.train.len() > s.test.len());
        assert!(s.test.len() > s.validation.len());
    }
}
