//! Darshan-style burst-buffer request assignment (§IV-A of the paper).
//!
//! The paper extends the CPU-only Theta trace with burst-buffer requests
//! by mining Darshan I/O logs: 40 % of jobs had Darshan records, 17.18 %
//! of all jobs moved more than 1 GB, and the assigned request sizes range
//! from 1 GB to 285 TB against a 1.26 PB shared burst buffer. This module
//! reproduces that assignment statistically: a configurable fraction of
//! jobs receives a heavy-tailed (log-uniform) request in a configurable
//! range, everything else gets zero.

use crate::dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the Darshan-like burst-buffer assignment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DarshanConfig {
    /// Fraction of jobs that receive any burst-buffer request
    /// (the paper: 17.18 % of jobs moved > 1 GB).
    pub participation: f64,
    /// Smallest assigned request, in GB (paper: 1 GB).
    pub min_gb: f64,
    /// Largest assigned request, in GB (paper: 285 TB = 291 840 GB).
    pub max_gb: f64,
}

impl Default for DarshanConfig {
    fn default() -> Self {
        Self { participation: 0.1718, min_gb: 1.0, max_gb: 285.0 * 1024.0 }
    }
}

impl DarshanConfig {
    /// Assign a burst-buffer request (in GB) to each of `n` jobs.
    /// Non-participating jobs get `0.0`.
    pub fn assign(&self, n: usize, seed: u64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&self.participation));
        assert!(self.min_gb > 0.0 && self.max_gb >= self.min_gb);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.gen::<f64>() < self.participation {
                    dist::log_uniform(&mut rng, self.min_gb, self.max_gb)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Convert a GB request into whole burst-buffer units for a pool of
    /// `bb_capacity_units` units representing `bb_capacity_gb` total GB.
    /// Requests round up to a whole unit and clamp to the pool size.
    pub fn gb_to_units(request_gb: f64, bb_capacity_gb: f64, bb_capacity_units: u64) -> u64 {
        if request_gb <= 0.0 || bb_capacity_gb <= 0.0 || bb_capacity_units == 0 {
            return 0;
        }
        let unit_gb = bb_capacity_gb / bb_capacity_units as f64;
        ((request_gb / unit_gb).ceil() as u64).min(bb_capacity_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participation_fraction_approximately_held() {
        let cfg = DarshanConfig::default();
        let reqs = cfg.assign(50_000, 1);
        let frac = reqs.iter().filter(|&&r| r > 0.0).count() as f64 / reqs.len() as f64;
        assert!((frac - 0.1718).abs() < 0.01, "participation {frac}");
    }

    #[test]
    fn requests_within_paper_range() {
        let cfg = DarshanConfig::default();
        for r in cfg.assign(10_000, 2) {
            if r > 0.0 {
                assert!((1.0..=285.0 * 1024.0).contains(&r), "{r} GB out of range");
            }
        }
    }

    #[test]
    fn heavy_tail_present() {
        let cfg = DarshanConfig::default();
        let reqs = cfg.assign(50_000, 3);
        let positive: Vec<f64> = reqs.into_iter().filter(|&r| r > 0.0).collect();
        let over_1tb = positive.iter().filter(|&&r| r > 1024.0).count() as f64
            / positive.len() as f64;
        // log-uniform over 1 GB..285 TB: P(>1TB) = ln(285)/ln(291840) ≈ 0.45.
        assert!((over_1tb - 0.449).abs() < 0.03, "tail mass {over_1tb}");
    }

    #[test]
    fn gb_to_units_rounds_up_and_clamps() {
        // 1.26 PB over 1293 units -> ~1 TB units (1021.6 GB each).
        let cap_gb = 1.26e6;
        let units = 1293;
        assert_eq!(DarshanConfig::gb_to_units(0.0, cap_gb, units), 0);
        assert_eq!(DarshanConfig::gb_to_units(1.0, cap_gb, units), 1);
        assert_eq!(DarshanConfig::gb_to_units(2000.0, cap_gb, units), 3);
        assert_eq!(
            DarshanConfig::gb_to_units(9e9, cap_gb, units),
            units,
            "clamps to pool size"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DarshanConfig::default();
        assert_eq!(cfg.assign(100, 7), cfg.assign(100, 7));
        assert_ne!(cfg.assign(100, 7), cfg.assign(100, 8));
    }
}
