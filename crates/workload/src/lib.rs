//! Workload synthesis for the MRSch reproduction.
//!
//! The paper evaluates on a five-month 2018 job trace from **Theta**
//! (ALCF), extended with burst-buffer requests derived from Darshan I/O
//! logs, and then derives five two-resource workloads S1–S5 (Table III)
//! and five three-resource workloads S6–S10 (§V-E). The original trace is
//! proprietary, so this crate substitutes a *statistical Theta-like
//! synthesizer* (see DESIGN.md §3) and implements the published
//! derivation rules exactly:
//!
//! * [`dist`] — the distributions the synthesizer needs (normal,
//!   log-normal, log-uniform, Poisson process), built on plain `rand`,
//! * [`theta`] — the base-trace synthesizer (node counts, runtimes,
//!   walltime estimates, diurnal Poisson arrivals),
//! * [`darshan`] — Darshan-style burst-buffer request assignment (40 %
//!   of jobs with I/O records, 17.18 % over 1 GB, 1 GB–285 TB range),
//! * [`suite`] — the S1–S5 workload builders of Table III and the
//!   S6–S10 power extension of §V-E,
//! * [`jobset`] — job-set construction for the three-phase training
//!   curriculum of §III-D (sampled / real / synthetic) and the six
//!   orderings compared in Fig. 4,
//! * [`split`] — chronological train/validation/test splitting (§IV-A
//!   splits five months into 3.5 months / 2 weeks / rest),
//! * [`disruption`] — seeded cancellation / walltime-overrun / node-drain
//!   trace synthesis on top of any job set, plus SWF status replay,
//! * [`stress`] — engine-scale synthetic stress traces (exponential
//!   runtimes, Poisson arrivals at a fixed offered load) for event-engine
//!   benchmarks and the large-trace determinism suite,
//! * [`scenario`] — named, seeded episode recipes ([`Scenario`]) and
//!   ordered training [`Curriculum`]s (clean → cancel-heavy →
//!   drain-heavy hardening) consumed by the training engine,
//! * [`swf`] — Standard Workload Format ingestion/export, so real
//!   production logs drive the identical pipeline.
//!
//! All generators take explicit seeds and are fully deterministic.

pub mod darshan;
pub mod disruption;
pub mod dist;
pub mod jobset;
pub mod scenario;
pub mod split;
pub mod stress;
pub mod suite;
pub mod swf;
pub mod theta;

pub use disruption::{DisruptionConfig, DisruptionTrace, DrainSpec};
pub use scenario::{
    Curriculum, CurriculumPhase, CurriculumProgress, DagConfig, EpisodeSpec, GoalSchedule,
    JobSource, PlateauRule, Scenario,
};
pub use stress::{ArrivalProcess, StressConfig};
pub use suite::{WorkloadSpec, PowerSpec};
pub use theta::{SwfStatus, ThetaConfig, TraceJob};
