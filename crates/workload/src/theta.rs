//! Theta-like base-trace synthesis.
//!
//! The paper's base trace is five months of 2018 production jobs from
//! Theta at ALCF (4392 Intel KNL nodes). That log is proprietary, so this
//! module generates a statistically similar trace (the substitution is
//! documented in DESIGN.md §3):
//!
//! * **Node counts** — Theta's scheduling policy allocates in large
//!   blocks; production logs show strong mass on powers of two between
//!   128 and the full machine. The synthesizer draws from a weighted
//!   power-of-two ladder spanning the configured machine, including rare
//!   full-machine jobs.
//! * **Runtimes** — log-normal, clipped to [2 min, 36 h]; the resulting
//!   range spans seconds-scale to day-scale, the property the paper's
//!   vector state encoding exists to handle.
//! * **Estimates** — runtime multiplied by a uniform over-estimation
//!   factor, rounded up to 15-minute buckets (users request walltime in
//!   coarse increments).
//! * **Arrivals** — a Poisson process whose rate is modulated by a
//!   diurnal pattern (daytime submission peaks), matching the "hourly and
//!   daily job arrivals" the paper's synthetic job sets mimic.

use crate::dist;
use mrsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Completion status of a trace job, following the SWF convention
/// (column 11: 1 = completed, 0 = failed, 5 = cancelled). Synthetic
/// traces generate [`SwfStatus::Completed`]; SWF ingestion maps the real
/// codes through so disruption replay can re-issue the trace's
/// cancellations (see `crate::disruption::swf_cancel_events`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwfStatus {
    /// Ran to completion (SWF code 1, and anything unrecognized).
    #[default]
    Completed,
    /// Failed or killed — commonly a walltime kill when the recorded
    /// runtime reaches the request (SWF code 0).
    Failed,
    /// Cancelled by its user (SWF code 5).
    Cancelled,
}

impl SwfStatus {
    /// Decode an SWF status column value.
    pub fn from_code(code: i64) -> Self {
        match code {
            0 => SwfStatus::Failed,
            5 => SwfStatus::Cancelled,
            _ => SwfStatus::Completed,
        }
    }

    /// Encode back to the SWF status column.
    pub fn code(self) -> i64 {
        match self {
            SwfStatus::Completed => 1,
            SwfStatus::Failed => 0,
            SwfStatus::Cancelled => 5,
        }
    }
}

/// One job of a base trace: everything but the extended resources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Submission time (seconds from trace start).
    pub submit: SimTime,
    /// Actual runtime in seconds.
    pub runtime: SimTime,
    /// User walltime estimate in seconds (`>= runtime`).
    pub estimate: SimTime,
    /// Requested compute nodes.
    pub nodes: u64,
    /// Recorded completion status (always `Completed` for synthetic jobs).
    pub status: SwfStatus,
}

/// Synthesizer parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThetaConfig {
    /// Machine size in nodes (4392 for real Theta; smaller for scaled
    /// experiments).
    pub machine_nodes: u64,
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Mean inter-arrival time in seconds (before diurnal modulation).
    pub mean_interarrival: f64,
    /// Log-normal runtime parameters (of ln seconds).
    pub runtime_mu: f64,
    /// Log-normal runtime sigma.
    pub runtime_sigma: f64,
    /// Minimum runtime in seconds.
    pub min_runtime: SimTime,
    /// Maximum runtime in seconds.
    pub max_runtime: SimTime,
    /// Strength of the diurnal arrival modulation in `[0, 1)`; 0 disables
    /// it (pure Poisson).
    pub diurnal_amplitude: f64,
}

impl ThetaConfig {
    /// Full-scale Theta-like configuration.
    pub fn theta(num_jobs: usize) -> Self {
        Self {
            machine_nodes: 4392,
            num_jobs,
            // Theta saw ~70k jobs over 5 months => ~190 s mean spacing,
            // but only a fraction are sizable; 600 s keeps contention
            // realistic at full machine scale.
            mean_interarrival: 600.0,
            runtime_mu: 8.1,    // exp(8.1) ~ 54 min median
            runtime_sigma: 1.4, // wide spread: minutes to a day+
            min_runtime: 120,
            max_runtime: 36 * 3600,
            diurnal_amplitude: 0.5,
        }
    }

    /// Scaled configuration matched to [`mrsim::SystemConfig::scaled`]
    /// (256 nodes): shorter jobs and tighter arrivals so full
    /// train/evaluate pipelines run quickly while preserving contention.
    pub fn scaled(num_jobs: usize) -> Self {
        Self {
            machine_nodes: 256,
            num_jobs,
            mean_interarrival: 150.0,
            runtime_mu: 7.3, // exp(7.3) ~ 25 min median
            runtime_sigma: 1.2,
            min_runtime: 60,
            max_runtime: 8 * 3600,
            diurnal_amplitude: 0.5,
        }
    }

    /// Generate the base trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Vec<TraceJob> {
        let mut rng = StdRng::seed_from_u64(seed);
        let ladder = node_ladder(self.machine_nodes);
        let weights = ladder_weights(&ladder, self.machine_nodes);
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut clock = 0.0f64;
        for _ in 0..self.num_jobs {
            clock += self.next_interarrival(&mut rng, clock);
            let submit = clock.round() as SimTime;
            let runtime = dist::log_normal_clamped(
                &mut rng,
                self.runtime_mu,
                self.runtime_sigma,
                self.min_runtime as f64,
                self.max_runtime as f64,
            )
            .round() as SimTime;
            let estimate = round_up_to(
                (runtime as f64 * rng.gen_range(1.0..3.0)).round() as SimTime,
                900,
            );
            let nodes = ladder[dist::weighted_index(&mut rng, &weights)];
            jobs.push(TraceJob { submit, runtime, estimate, nodes, status: SwfStatus::Completed });
        }
        jobs
    }

    /// Inter-arrival draw with diurnal rate modulation: the instantaneous
    /// mean is `mean / (1 + A sin(2π t / day))` clamped positive, so
    /// daytime (positive sine) arrivals are denser.
    fn next_interarrival(&self, rng: &mut StdRng, clock: f64) -> f64 {
        let base = dist::exponential(rng, self.mean_interarrival);
        if self.diurnal_amplitude == 0.0 {
            return base.max(1.0);
        }
        let phase = (clock / 86_400.0) * std::f64::consts::TAU;
        let rate_scale = 1.0 + self.diurnal_amplitude * phase.sin();
        (base / rate_scale.max(0.1)).max(1.0)
    }
}

/// Power-of-two node-count ladder from a machine-dependent minimum up to
/// the full machine (always included).
fn node_ladder(machine: u64) -> Vec<u64> {
    // Theta's minimum allocation is 128 nodes (~1/34 of the machine), but
    // most jobs request a small fraction of the system. Starting the
    // ladder at machine/64 keeps per-job node fractions small enough that
    // many jobs run concurrently — the regime in which the burst buffer
    // (whose per-job request fractions follow Table III) can become the
    // binding resource, as in the paper's S3–S5 workloads.
    let min = (machine / 64).max(1);
    let mut ladder = Vec::new();
    let mut v = min.next_power_of_two().max(1);
    while v < machine {
        ladder.push(v);
        v *= 2;
    }
    ladder.push(machine);
    ladder
}

/// Weights for the ladder: mid-sized requests dominate, full-machine jobs
/// are rare but present (they are exactly the starvation-prone jobs §III-C
/// protects).
fn ladder_weights(ladder: &[u64], machine: u64) -> Vec<f64> {
    ladder
        .iter()
        .map(|&n| {
            let frac = n as f64 / machine as f64;
            if frac >= 1.0 {
                0.03
            } else if frac >= 0.5 {
                0.07
            } else if frac >= 0.25 {
                0.15
            } else {
                1.0
            }
        })
        .collect()
}

/// Round `v` up to a multiple of `step`.
fn round_up_to(v: SimTime, step: SimTime) -> SimTime {
    v.div_ceil(step) * step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_sorted_by_submit() {
        let cfg = ThetaConfig::scaled(500);
        let jobs = cfg.generate(1);
        assert_eq!(jobs.len(), 500);
        assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    }

    #[test]
    fn runtimes_within_bounds_and_estimates_dominate() {
        let cfg = ThetaConfig::scaled(1000);
        for j in cfg.generate(2) {
            assert!(j.runtime >= cfg.min_runtime && j.runtime <= cfg.max_runtime);
            assert!(j.estimate >= j.runtime, "estimate must cover runtime");
            assert_eq!(j.estimate % 900, 0, "estimates are 15-min buckets");
        }
    }

    #[test]
    fn node_counts_are_ladder_values_within_machine() {
        let cfg = ThetaConfig::scaled(1000);
        let ladder = node_ladder(cfg.machine_nodes);
        for j in cfg.generate(3) {
            assert!(j.nodes <= cfg.machine_nodes);
            assert!(ladder.contains(&j.nodes), "nodes {} not in ladder", j.nodes);
        }
    }

    #[test]
    fn full_machine_jobs_occur_but_rarely() {
        let cfg = ThetaConfig::scaled(5000);
        let jobs = cfg.generate(4);
        let full = jobs.iter().filter(|j| j.nodes == cfg.machine_nodes).count();
        assert!(full > 0, "full-machine jobs must exist (starvation stressor)");
        assert!((full as f64) < 0.10 * jobs.len() as f64, "but stay rare: {full}");
    }

    #[test]
    fn wide_runtime_spread() {
        let cfg = ThetaConfig::scaled(5000);
        let jobs = cfg.generate(5);
        let min = jobs.iter().map(|j| j.runtime).min().unwrap();
        let max = jobs.iter().map(|j| j.runtime).max().unwrap();
        assert!(max as f64 / min as f64 > 20.0, "runtime spread {min}..{max}");
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let cfg = ThetaConfig::scaled(100);
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }

    #[test]
    fn diurnal_modulation_changes_arrival_pattern() {
        let mut flat = ThetaConfig::scaled(2000);
        flat.diurnal_amplitude = 0.0;
        let mut wavy = flat;
        wavy.diurnal_amplitude = 0.9;
        let span = |jobs: &[TraceJob]| jobs.last().unwrap().submit;
        // Same seed, different amplitude => different arrival sequence.
        assert_ne!(span(&flat.generate(9)), span(&wavy.generate(9)));
    }

    #[test]
    fn ladder_for_theta_contains_128_and_full_machine() {
        let ladder = node_ladder(4392);
        assert!(ladder.contains(&256));
        assert_eq!(*ladder.last().unwrap(), 4392);
        assert!(ladder.len() >= 5);
    }

    #[test]
    fn round_up_behaviour() {
        assert_eq!(round_up_to(1, 900), 900);
        assert_eq!(round_up_to(900, 900), 900);
        assert_eq!(round_up_to(901, 900), 1800);
    }
}
