//! The S1–S10 workload suite (Table III and §V-E of the paper).
//!
//! Each workload is derived from a base trace by re-assigning
//! burst-buffer requests (and, for S6–S10, power profiles):
//!
//! | Workload | nodes | BB participation | BB size range |
//! |---|---|---|---|
//! | S1 | as in trace | 50 % | [5 TB, 285 TB] |
//! | S2 | as in trace | 75 % | [5 TB, 285 TB] |
//! | S3 | as in trace | 50 % | [20 TB, 285 TB] |
//! | S4 | as in trace | 75 % | [20 TB, 285 TB] |
//! | S5 | half of trace | 75 % | [20 TB, 285 TB] |
//!
//! S6–S10 add per-node power profiles drawn uniformly in [100, 215] W
//! (KNL 7230 TDP is 215 W) under a 500 kW system budget to S1–S5.
//!
//! Sizes are expressed as *fractions of the burst-buffer capacity*
//! (5/1293, 20/1293 and 285/1293 of Theta's 1293 TB buffer) so the same
//! suite definition applies unchanged to proportionally scaled systems.

use crate::dist;
use crate::theta::TraceJob;
use mrsim::job::Job;
use mrsim::resources::{ResourceSpec, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Theta's burst-buffer capacity in TB units (1.26 PB).
pub const THETA_BB_UNITS: f64 = 1293.0;

/// Power-profile parameters of the §V-E three-resource case study.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Lower bound of the per-node power draw in watts (paper: 100 W).
    pub min_watts: f64,
    /// Upper bound of the per-node power draw in watts (KNL TDP: 215 W).
    pub max_watts: f64,
    /// Idle per-node power in watts (paper: 60 W; reporting only — idle
    /// power is not schedulable).
    pub idle_watts: f64,
    /// System power budget as a fraction of the theoretical maximum draw
    /// (`machine_nodes * max_watts`). The paper restricts Theta
    /// (4392 × 215 W ≈ 944 kW) to 500 kW, i.e. ≈ 0.53.
    pub budget_fraction: f64,
}

impl Default for PowerSpec {
    fn default() -> Self {
        Self { min_watts: 100.0, max_watts: 215.0, idle_watts: 60.0, budget_fraction: 0.53 }
    }
}

impl PowerSpec {
    /// Power-budget pool capacity in kW units for a machine of
    /// `machine_nodes` nodes.
    pub fn budget_kw(&self, machine_nodes: u64) -> u64 {
        ((machine_nodes as f64 * self.max_watts * self.budget_fraction) / 1000.0)
            .ceil()
            .max(1.0) as u64
    }
}

/// One workload definition of the S1–S10 suite.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// "S1" … "S10".
    pub name: String,
    /// Fraction of jobs that request any burst buffer.
    pub bb_participation: f64,
    /// Smallest assigned BB request, as a fraction of BB capacity.
    pub bb_min_frac: f64,
    /// Largest assigned BB request, as a fraction of BB capacity.
    pub bb_max_frac: f64,
    /// Multiplier on the trace's node request (S5/S10 halve it).
    pub node_scale: f64,
    /// Present for the three-resource workloads S6–S10.
    pub power: Option<PowerSpec>,
}

const BB_SMALL_MIN: f64 = 5.0 / THETA_BB_UNITS;
const BB_LARGE_MIN: f64 = 20.0 / THETA_BB_UNITS;
const BB_MAX: f64 = 285.0 / THETA_BB_UNITS;

impl WorkloadSpec {
    fn base(name: &str, participation: f64, min_frac: f64, node_scale: f64) -> Self {
        Self {
            name: name.to_string(),
            bb_participation: participation,
            bb_min_frac: min_frac,
            bb_max_frac: BB_MAX,
            node_scale,
            power: None,
        }
    }

    /// Table III row S1.
    pub fn s1() -> Self {
        Self::base("S1", 0.50, BB_SMALL_MIN, 1.0)
    }
    /// Table III row S2.
    pub fn s2() -> Self {
        Self::base("S2", 0.75, BB_SMALL_MIN, 1.0)
    }
    /// Table III row S3.
    pub fn s3() -> Self {
        Self::base("S3", 0.50, BB_LARGE_MIN, 1.0)
    }
    /// Table III row S4.
    pub fn s4() -> Self {
        Self::base("S4", 0.75, BB_LARGE_MIN, 1.0)
    }
    /// Table III row S5 (S4 with halved node requests).
    pub fn s5() -> Self {
        Self::base("S5", 0.75, BB_LARGE_MIN, 0.5)
    }

    /// §V-E workload S(k+5): S(k) plus a power profile.
    fn with_power(mut self, k: usize) -> Self {
        self.name = format!("S{}", k + 5);
        self.power = Some(PowerSpec::default());
        self
    }

    /// S6–S10 constructors.
    pub fn s6() -> Self {
        Self::s1().with_power(1)
    }
    /// See [`WorkloadSpec::s6`].
    pub fn s7() -> Self {
        Self::s2().with_power(2)
    }
    /// See [`WorkloadSpec::s6`].
    pub fn s8() -> Self {
        Self::s3().with_power(3)
    }
    /// See [`WorkloadSpec::s6`].
    pub fn s9() -> Self {
        Self::s4().with_power(4)
    }
    /// See [`WorkloadSpec::s6`].
    pub fn s10() -> Self {
        Self::s5().with_power(5)
    }

    /// The two-resource suite S1–S5 of Table III.
    pub fn two_resource_suite() -> Vec<Self> {
        vec![Self::s1(), Self::s2(), Self::s3(), Self::s4(), Self::s5()]
    }

    /// The three-resource suite S6–S10 of §V-E.
    pub fn three_resource_suite() -> Vec<Self> {
        vec![Self::s6(), Self::s7(), Self::s8(), Self::s9(), Self::s10()]
    }

    /// The system configuration this workload schedules on, derived from
    /// a two-resource base system (adds the power pool for S6–S10).
    pub fn system_for(&self, base: &SystemConfig) -> SystemConfig {
        assert!(
            base.num_resources() >= 2,
            "workload suite needs a nodes+burst-buffer base system"
        );
        let nodes = base.resources[0].capacity;
        let bb = base.resources[1].capacity;
        match &self.power {
            None => SystemConfig::two_resource(nodes, bb),
            Some(p) => SystemConfig::new(vec![
                ResourceSpec::new("nodes", nodes),
                ResourceSpec::new("burst_buffer_tb", bb),
                ResourceSpec::new("power_kw", p.budget_kw(nodes)),
            ]),
        }
    }

    /// Materialize the workload over a base trace for the given system.
    ///
    /// Node requests scale by `node_scale` (min 1, clamped to capacity);
    /// BB requests are drawn log-uniformly in
    /// `[bb_min_frac, bb_max_frac] × capacity` for participating jobs;
    /// power demands (S6–S10) are `ceil(nodes × U(100, 215) W)` in kW
    /// units, clamped to the budget.
    pub fn build(&self, base: &[TraceJob], system: &SystemConfig, seed: u64) -> Vec<Job> {
        let nres = system.num_resources();
        assert!(
            nres == if self.power.is_some() { 3 } else { 2 },
            "system/resource count mismatch for workload {}",
            self.name
        );
        let node_cap = system.resources[0].capacity;
        let bb_cap = system.resources[1].capacity;
        let mut rng = StdRng::seed_from_u64(seed);
        base.iter()
            .enumerate()
            .map(|(i, t)| {
                let nodes = (((t.nodes as f64) * self.node_scale).round() as u64)
                    .clamp(1, node_cap);
                let bb = if rng.gen::<f64>() < self.bb_participation {
                    let frac =
                        dist::log_uniform(&mut rng, self.bb_min_frac, self.bb_max_frac);
                    ((frac * bb_cap as f64).round() as u64).clamp(1, bb_cap)
                } else {
                    0
                };
                let mut demands = vec![nodes, bb];
                if let Some(p) = &self.power {
                    let watts = rng.gen_range(p.min_watts..p.max_watts);
                    let kw = ((nodes as f64 * watts) / 1000.0).ceil() as u64;
                    demands.push(kw.clamp(1, system.resources[2].capacity));
                }
                Job::new(i, t.submit, t.runtime, t.estimate, demands)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaConfig;

    fn base_trace() -> Vec<TraceJob> {
        ThetaConfig::scaled(2000).generate(11)
    }

    fn scaled_system() -> SystemConfig {
        SystemConfig::scaled()
    }

    #[test]
    fn table3_parameters_encoded() {
        assert_eq!(WorkloadSpec::s1().bb_participation, 0.50);
        assert_eq!(WorkloadSpec::s2().bb_participation, 0.75);
        assert!((WorkloadSpec::s3().bb_min_frac - 20.0 / 1293.0).abs() < 1e-12);
        assert!((WorkloadSpec::s1().bb_min_frac - 5.0 / 1293.0).abs() < 1e-12);
        assert_eq!(WorkloadSpec::s5().node_scale, 0.5);
        assert_eq!(WorkloadSpec::s4().node_scale, 1.0);
        for s in WorkloadSpec::two_resource_suite() {
            assert!(s.power.is_none());
            assert!((s.bb_max_frac - 285.0 / 1293.0).abs() < 1e-12);
        }
    }

    #[test]
    fn s6_to_s10_carry_power() {
        let suite = WorkloadSpec::three_resource_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].name, "S6");
        assert_eq!(suite[4].name, "S10");
        assert_eq!(suite[4].node_scale, 0.5, "S10 mirrors S5");
        for s in suite {
            assert!(s.power.is_some());
        }
    }

    #[test]
    fn participation_fraction_approximately_held() {
        let base = base_trace();
        let sys = scaled_system();
        let jobs = WorkloadSpec::s2().build(&base, &sys, 1);
        let frac = jobs.iter().filter(|j| j.demands[1] > 0).count() as f64
            / jobs.len() as f64;
        assert!((frac - 0.75).abs() < 0.04, "S2 participation {frac}");
        let jobs1 = WorkloadSpec::s1().build(&base, &sys, 1);
        let frac1 = jobs1.iter().filter(|j| j.demands[1] > 0).count() as f64
            / jobs1.len() as f64;
        assert!((frac1 - 0.50).abs() < 0.04, "S1 participation {frac1}");
    }

    #[test]
    fn bb_sizes_respect_scaled_ranges() {
        let base = base_trace();
        let sys = scaled_system();
        let bb_cap = sys.resources[1].capacity as f64;
        let jobs = WorkloadSpec::s3().build(&base, &sys, 2);
        for j in jobs.iter().filter(|j| j.demands[1] > 0) {
            let frac = j.demands[1] as f64 / bb_cap;
            // Rounding to whole units allows ±1 unit slack at the edges.
            assert!(
                frac >= 20.0 / 1293.0 - 1.0 / bb_cap && frac <= 285.0 / 1293.0 + 1.0 / bb_cap,
                "S3 BB fraction {frac}"
            );
        }
    }

    #[test]
    fn s4_requests_larger_than_s1_on_average() {
        let base = base_trace();
        let sys = scaled_system();
        let avg = |jobs: &[Job]| {
            let v: Vec<u64> = jobs.iter().map(|j| j.demands[1]).filter(|&b| b > 0).collect();
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        let s1 = avg(&WorkloadSpec::s1().build(&base, &sys, 3));
        let s4 = avg(&WorkloadSpec::s4().build(&base, &sys, 3));
        assert!(s4 > s1, "S4 ({s4}) must stress the BB more than S1 ({s1})");
    }

    #[test]
    fn s5_halves_node_requests() {
        let base = base_trace();
        let sys = scaled_system();
        let s4 = WorkloadSpec::s4().build(&base, &sys, 4);
        let s5 = WorkloadSpec::s5().build(&base, &sys, 4);
        let total4: u64 = s4.iter().map(|j| j.demands[0]).sum();
        let total5: u64 = s5.iter().map(|j| j.demands[0]).sum();
        let ratio = total5 as f64 / total4 as f64;
        assert!((ratio - 0.5).abs() < 0.05, "S5/S4 node ratio {ratio}");
    }

    #[test]
    fn power_demands_valid_for_s6() {
        let base = base_trace();
        let spec = WorkloadSpec::s6();
        let sys = spec.system_for(&scaled_system());
        assert_eq!(sys.num_resources(), 3);
        let budget = sys.resources[2].capacity;
        let jobs = spec.build(&base, &sys, 5);
        for j in &jobs {
            assert_eq!(j.demands.len(), 3);
            assert!(j.demands[2] >= 1 && j.demands[2] <= budget);
            // Power tracks nodes: between 100 and 215 W per node (+ceil).
            let w_per_node = j.demands[2] as f64 * 1000.0 / j.demands[0] as f64;
            assert!(
                w_per_node >= 99.0 && w_per_node <= 216.0 + 1000.0 / j.demands[0] as f64,
                "per-node watts {w_per_node}"
            );
        }
        for j in jobs {
            sys.validate_job(&j).unwrap();
        }
    }

    #[test]
    fn budget_matches_paper_at_theta_scale() {
        let p = PowerSpec::default();
        let kw = p.budget_kw(4392);
        assert!((kw as f64 - 500.0).abs() < 10.0, "Theta budget {kw} kW ≈ 500 kW");
    }

    #[test]
    fn all_built_jobs_validate_against_system() {
        let base = base_trace();
        for spec in WorkloadSpec::two_resource_suite() {
            let sys = spec.system_for(&scaled_system());
            for j in spec.build(&base, &sys, 6) {
                sys.validate_job(&j).unwrap();
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let base = base_trace();
        let sys = scaled_system();
        let a = WorkloadSpec::s4().build(&base, &sys, 9);
        let b = WorkloadSpec::s4().build(&base, &sys, 9);
        assert_eq!(a, b);
    }
}
