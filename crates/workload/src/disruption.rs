//! Seeded disruption-trace synthesis: cancellations, walltime overruns
//! and capacity drains layered on top of any job set.
//!
//! Production schedulers live with three disturbances the base trace
//! never shows:
//!
//! * **cancellations** — users withdraw queued or running jobs,
//! * **overruns** — true runtime exceeds the walltime request; the RJMS
//!   kills the job at `start + estimate`,
//! * **drains** — nodes (or power budget) go offline for maintenance or
//!   capping and later return.
//!
//! [`DisruptionConfig::synthesize`] turns a clean job list into a
//! [`DisruptionTrace`]: a (possibly modified) job list plus the
//! [`InjectedEvent`]s to feed `Simulator::inject_all`. Everything is
//! seeded and deterministic. SWF traces carry their own disruption
//! record in the status column; [`swf_cancel_events`] maps the archive's
//! `cancelled` status through to [`EventKind::Cancel`] events so real
//! logs replay with their real cancellations.

use crate::theta::{SwfStatus, TraceJob};
use mrsim::event::{EventKind, InjectedEvent};
use mrsim::job::Job;
use mrsim::resources::SystemConfig;
use mrsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One capacity drain-and-return episode.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DrainSpec {
    /// Index of the resource pool to drain.
    pub resource: usize,
    /// Fraction of the pool's capacity to take offline, in `(0, 1]`.
    pub fraction: f64,
    /// When the drain begins.
    pub at: SimTime,
    /// How long until the capacity returns. `0` means it never returns.
    pub duration: SimTime,
}

impl DrainSpec {
    /// Units taken offline for a pool of `capacity` units (at least 1).
    pub fn units(&self, capacity: u64) -> u64 {
        ((capacity as f64 * self.fraction).round() as u64).clamp(1, capacity)
    }
}

/// Parameters of a synthetic disruption trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DisruptionConfig {
    /// Fraction of jobs cancelled at a uniform point in
    /// `[submit, submit + estimate]` (hitting them queued or running,
    /// whichever the schedule dictates).
    pub cancel_fraction: f64,
    /// Fraction of jobs whose true runtime overruns their estimate
    /// (disjoint from the cancelled set).
    pub overrun_fraction: f64,
    /// Runtime multiplier applied to an overrunner's *estimate*:
    /// `runtime = ceil(estimate * overrun_factor)`, `> 1`.
    pub overrun_factor: f64,
    /// Capacity drain/return episodes.
    pub drains: Vec<DrainSpec>,
}

impl Default for DisruptionConfig {
    fn default() -> Self {
        Self {
            cancel_fraction: 0.0,
            overrun_fraction: 0.0,
            overrun_factor: 1.5,
            drains: Vec::new(),
        }
    }
}

/// A job list plus the injected events that disrupt it.
#[derive(Clone, Debug, PartialEq)]
pub struct DisruptionTrace {
    /// The job list, with overrunners' runtimes inflated past their
    /// estimates. Feed to `Simulator::new` with `enforce_walltime` on.
    pub jobs: Vec<Job>,
    /// Events to pass to `Simulator::inject_all` before running.
    pub events: Vec<InjectedEvent>,
}

impl DisruptionConfig {
    /// A single node-drain episode (resource 0): `fraction` of the nodes
    /// go offline at `at` and return after `duration`.
    pub fn node_drain(fraction: f64, at: SimTime, duration: SimTime) -> Self {
        Self {
            drains: vec![DrainSpec { resource: 0, fraction, at, duration }],
            ..Self::default()
        }
    }

    /// Synthesize a disruption trace over `jobs` for `system`,
    /// deterministically from `seed`.
    pub fn synthesize(&self, jobs: &[Job], system: &SystemConfig, seed: u64) -> DisruptionTrace {
        assert!((0.0..=1.0).contains(&self.cancel_fraction), "cancel_fraction in [0,1]");
        assert!((0.0..=1.0).contains(&self.overrun_fraction), "overrun_fraction in [0,1]");
        assert!(self.overrun_factor > 1.0, "overrun_factor must exceed 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut jobs = jobs.to_vec();
        let mut events = Vec::new();
        for job in &mut jobs {
            let roll: f64 = rng.gen();
            if roll < self.cancel_fraction {
                let offset = rng.gen_range(0..job.estimate.max(1) + 1);
                events.push(InjectedEvent::new(
                    job.submit + offset,
                    EventKind::Cancel(job.id),
                ));
            } else if roll < self.cancel_fraction + self.overrun_fraction {
                // Overrun: true runtime exceeds the estimate; the
                // walltime enforcer will kill the job at start+estimate.
                job.runtime = (job.estimate as f64 * self.overrun_factor).ceil() as SimTime;
            }
        }
        for d in &self.drains {
            assert!(d.resource < system.num_resources(), "drain resource out of range");
            assert!(d.fraction > 0.0 && d.fraction <= 1.0, "drain fraction in (0,1]");
            let units = d.units(system.resources[d.resource].capacity) as i64;
            events.push(InjectedEvent::new(
                d.at,
                EventKind::CapacityChange { resource: d.resource, delta: -units },
            ));
            if d.duration > 0 {
                events.push(InjectedEvent::new(
                    d.at + d.duration,
                    EventKind::CapacityChange { resource: d.resource, delta: units },
                ));
            }
        }
        DisruptionTrace { jobs, events }
    }
}

/// Map SWF `cancelled` status codes to [`EventKind::Cancel`] events.
///
/// `jobs` is the materialized job list (e.g. from `WorkloadSpec::build`)
/// and `trace` the source [`TraceJob`]s carrying statuses; the two align
/// by index. The archive records a cancelled job's observed lifetime in
/// its runtime column, so the cancel fires at `submit + runtime` — a
/// faithful replay when the simulated schedule tracks the original, and
/// a reasonable proxy otherwise. Killed jobs need no event: the SWF
/// convention leaves their runtime at/above the request, so the walltime
/// enforcer handles them.
pub fn swf_cancel_events(jobs: &[Job], trace: &[TraceJob]) -> Vec<InjectedEvent> {
    jobs.iter()
        .zip(trace)
        .filter(|(_, t)| t.status == SwfStatus::Cancelled)
        .map(|(j, _)| InjectedEvent::new(j.submit + j.runtime, EventKind::Cancel(j.id)))
        .collect()
}

/// Map SWF `cancelled` statuses to *wait-time-aware* relative cancels:
/// `(job id, recorded lifetime)` pairs for
/// `Simulator::schedule_cancel_after_start`, so each replayed cancel
/// fires at `start + runtime` of the **simulated** run.
///
/// This is the faithful mapping whenever the simulated schedule diverges
/// from the original (different policy, disruptions, backfilling): the
/// archive's runtime column records how long the cancelled job actually
/// ran, and that lifetime is anchored to the job's start — not its
/// submission. [`swf_cancel_events`] remains the absolute-time proxy.
///
/// The delay comes from the *trace's* runtime column, not the job
/// list's — a synthetic overrun layer may have inflated a job's
/// `runtime` past the recorded lifetime, but the user's observed
/// cancel point is the recorded one.
pub fn swf_relative_cancels(jobs: &[Job], trace: &[TraceJob]) -> Vec<(usize, SimTime)> {
    jobs.iter()
        .zip(trace)
        .filter(|(_, t)| t.status == SwfStatus::Cancelled)
        .map(|(j, t)| (j.id, t.runtime))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job::new(i, (i as SimTime) * 50, 300, 600, vec![1 + (i as u64 % 4), 0]))
            .collect()
    }

    fn system() -> SystemConfig {
        SystemConfig::two_resource(16, 8)
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DisruptionConfig {
            cancel_fraction: 0.2,
            overrun_fraction: 0.2,
            overrun_factor: 1.5,
            drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: 100, duration: 500 }],
        };
        let a = cfg.synthesize(&jobs(200), &system(), 7);
        let b = cfg.synthesize(&jobs(200), &system(), 7);
        assert_eq!(a, b);
        let c = cfg.synthesize(&jobs(200), &system(), 8);
        assert_ne!(a, c, "different seeds pick different victims");
    }

    #[test]
    fn fractions_approximately_held_and_disjoint() {
        let cfg = DisruptionConfig {
            cancel_fraction: 0.25,
            overrun_fraction: 0.25,
            overrun_factor: 2.0,
            drains: vec![],
        };
        let base = jobs(2000);
        let t = cfg.synthesize(&base, &system(), 3);
        let cancels = t
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Cancel(_)))
            .count() as f64
            / base.len() as f64;
        let overruns = t.jobs.iter().filter(|j| j.runtime > j.estimate).count() as f64
            / base.len() as f64;
        assert!((cancels - 0.25).abs() < 0.04, "cancel fraction {cancels}");
        assert!((overruns - 0.25).abs() < 0.04, "overrun fraction {overruns}");
        // Disjoint: no cancelled job also overruns.
        for e in &t.events {
            if let EventKind::Cancel(id) = e.kind {
                assert!(t.jobs[id].runtime <= t.jobs[id].estimate);
            }
        }
    }

    #[test]
    fn cancel_times_fall_within_job_lifetime() {
        let cfg = DisruptionConfig { cancel_fraction: 1.0, ..Default::default() };
        let base = jobs(100);
        let t = cfg.synthesize(&base, &system(), 5);
        assert_eq!(t.events.len(), 100);
        for e in &t.events {
            if let EventKind::Cancel(id) = e.kind {
                let j = &base[id];
                assert!(e.time >= j.submit && e.time <= j.submit + j.estimate);
            }
        }
    }

    #[test]
    fn overruns_inflate_runtime_past_estimate() {
        let cfg = DisruptionConfig {
            overrun_fraction: 1.0,
            overrun_factor: 1.5,
            ..Default::default()
        };
        let t = cfg.synthesize(&jobs(50), &system(), 1);
        for j in &t.jobs {
            assert_eq!(j.runtime, (j.estimate as f64 * 1.5).ceil() as SimTime);
            assert!(j.runtime > j.estimate);
        }
    }

    #[test]
    fn node_drain_emits_paired_capacity_changes() {
        let cfg = DisruptionConfig::node_drain(0.25, 1000, 2000);
        let t = cfg.synthesize(&jobs(10), &system(), 1);
        assert_eq!(t.events.len(), 2);
        assert_eq!(
            t.events[0],
            InjectedEvent::new(1000, EventKind::CapacityChange { resource: 0, delta: -4 })
        );
        assert_eq!(
            t.events[1],
            InjectedEvent::new(3000, EventKind::CapacityChange { resource: 0, delta: 4 })
        );
    }

    #[test]
    fn permanent_drain_has_no_return() {
        let cfg = DisruptionConfig::node_drain(0.5, 100, 0);
        let t = cfg.synthesize(&jobs(10), &system(), 1);
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn swf_cancelled_statuses_become_cancel_events() {
        let base = jobs(4);
        let statuses = [
            SwfStatus::Completed,
            SwfStatus::Cancelled,
            SwfStatus::Failed,
            SwfStatus::Cancelled,
        ];
        let trace: Vec<TraceJob> = base
            .iter()
            .zip(statuses)
            .map(|(j, status)| TraceJob {
                submit: j.submit,
                runtime: j.runtime,
                estimate: j.estimate,
                nodes: j.demands[0],
                status,
            })
            .collect();
        let events = swf_cancel_events(&base, &trace);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Cancel(1));
        assert_eq!(events[0].time, base[1].submit + base[1].runtime);
        assert_eq!(events[1].kind, EventKind::Cancel(3));
        // The wait-aware mapping picks the same victims but anchors to
        // the simulated start via relative delays.
        let relative = swf_relative_cancels(&base, &trace);
        assert_eq!(relative, vec![(1, base[1].runtime), (3, base[3].runtime)]);
    }

    #[test]
    fn relative_cancels_use_recorded_lifetime_not_inflated_runtime() {
        // A synthetic overrun layer inflates a job's runtime past its
        // estimate; the replayed cancel must still fire at the trace's
        // *recorded* lifetime.
        let base = jobs(2);
        let trace: Vec<TraceJob> = base
            .iter()
            .map(|j| TraceJob {
                submit: j.submit,
                runtime: j.runtime,
                estimate: j.estimate,
                nodes: j.demands[0],
                status: SwfStatus::Cancelled,
            })
            .collect();
        let cfg = DisruptionConfig {
            overrun_fraction: 1.0,
            overrun_factor: 2.0,
            ..Default::default()
        };
        let inflated = cfg.synthesize(&base, &system(), 1);
        assert!(inflated.jobs.iter().all(|j| j.runtime > j.estimate));
        let relative = swf_relative_cancels(&inflated.jobs, &trace);
        for (id, delay) in relative {
            assert_eq!(delay, trace[id].runtime, "delay anchors to the recorded lifetime");
        }
    }

    #[test]
    fn relative_cancels_replay_through_the_simulator() {
        use mrsim::policy::HeadOfQueue;
        use mrsim::simulator::{SimParams, Simulator};
        // Two machine-filling jobs: J1 starts only at J0's end (t=300),
        // while the proxy would cancel it at submit+runtime = 250 — as a
        // *queued* removal. The wait-aware replay cancels it mid-run at
        // 300 + 200 = 500 instead.
        let system = SystemConfig::two_resource(4, 8);
        let jobs = vec![
            Job::new(0, 0, 300, 400, vec![4, 0]),
            Job::new(1, 50, 200, 400, vec![4, 0]),
        ];
        let trace: Vec<TraceJob> = jobs
            .iter()
            .zip([SwfStatus::Completed, SwfStatus::Cancelled])
            .map(|(j, status)| TraceJob {
                submit: j.submit,
                runtime: j.runtime,
                estimate: j.estimate,
                nodes: j.demands[0],
                status,
            })
            .collect();
        let mut sim =
            Simulator::new(system, jobs.clone(), SimParams::new(5, true)).unwrap();
        for (id, delay) in swf_relative_cancels(&jobs, &trace) {
            sim.schedule_cancel_after_start(id, delay).unwrap();
        }
        let report = sim.run(&mut HeadOfQueue);
        let rec1 = report.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(rec1.start, 300);
        assert_eq!(rec1.end, 500, "cancel fires at simulated start + lifetime");
        assert_eq!(report.jobs_cancelled, 1);
        assert!(report.all_jobs_accounted(2));
    }
}
