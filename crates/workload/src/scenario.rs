//! Scenarios and training curricula: reusable, seeded episode specs.
//!
//! Before this module, every experiment passed `(job set, workload spec,
//! disruption config, sim params, seed)` tuples around by hand. A
//! [`Scenario`] bundles those into one named, reusable recipe:
//! *where jobs come from* ([`JobSource`]), *how they are extended into
//! multi-resource demands* ([`WorkloadSpec`]), *what goes wrong*
//! ([`DisruptionConfig`]) and *how the simulator runs*
//! ([`SimParams`]). [`Scenario::materialize`] turns the recipe plus an
//! episode index into a concrete [`EpisodeSpec`] — a job list and the
//! events to inject — fully deterministically: the same scenario and
//! episode index always yield the same episode, regardless of who
//! materializes it (the serial trainer, a rollout worker thread, or an
//! evaluation harness).
//!
//! A [`Curriculum`] is an ordered list of [`CurriculumPhase`]s (scenario
//! + episode count + optional goal-vector override) with progress
//! tracking — the structure the paper's clean-first training extends
//! into disruption hardening: train on clean traffic, then on
//! cancel/overrun-heavy traffic, then on drain-heavy traffic
//! ([`Curriculum::disruption_hardening`]).

use crate::disruption::DisruptionConfig;
use crate::stress::StressConfig;
use crate::suite::WorkloadSpec;
use crate::theta::{SwfStatus, ThetaConfig, TraceJob};
use mrsim::event::{EventQueue, InjectedEvent};
use mrsim::job::Job;
use mrsim::resources::SystemConfig;
use mrsim::simulator::{SimError, SimParams, Simulator};
use mrsim::SimTime;
use serde::{Deserialize, Serialize};

/// Where a scenario's base jobs come from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobSource {
    /// Synthesize a fresh Theta-like trace per episode (each episode
    /// sees different jobs, seeded by the episode index).
    Theta(ThetaConfig),
    /// A fixed base trace replayed every episode (resource extension
    /// and disruptions still vary per episode).
    Trace(Vec<TraceJob>),
    /// Synthesize an open arrival stream per episode from the stress
    /// generator (Poisson / diurnal / spike arrivals; optionally
    /// duration-driven, in which case the **job count varies per
    /// episode** — see [`Scenario::materialize`]).
    Stress(StressConfig),
}

impl JobSource {
    /// The base trace for one episode.
    pub fn trace(&self, seed: u64) -> Vec<TraceJob> {
        match self {
            JobSource::Theta(cfg) => cfg.generate(seed),
            JobSource::Trace(jobs) => jobs.clone(),
            JobSource::Stress(cfg) => cfg
                .generate(seed)
                .into_iter()
                .map(|j| TraceJob {
                    submit: j.submit,
                    runtime: j.runtime,
                    estimate: j.estimate,
                    nodes: j.demands[0],
                    status: SwfStatus::Completed,
                })
                .collect(),
        }
    }
}

/// Structural workflow-DAG overlay applied to a materialized job list:
/// consecutive jobs are grouped into workflows whose tasks gate on their
/// predecessors. Synthesis is purely structural (no RNG) so the same
/// episode always carries the same graph. Grouped tasks share their
/// head's submit time — a workflow is submitted as a unit, and only its
/// ready frontier is visible to the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DagConfig {
    /// Linear pipelines: consecutive groups of `length` jobs where each
    /// task depends on the previous one.
    Chain {
        /// Tasks per workflow (≥ 2; a trailing shorter group is still
        /// chained when it has at least two tasks).
        length: usize,
    },
    /// Map-reduce shapes: a root task, `width` parallel middle tasks
    /// depending on the root, and a join task depending on all middles
    /// (`width + 2` jobs per workflow; a trailing partial group stays
    /// independent).
    Fanout {
        /// Parallel middle tasks per workflow (≥ 1).
        width: usize,
    },
}

impl DagConfig {
    /// Build the predecessor lists for `jobs` and align each workflow's
    /// submit times to its head job (mutating `jobs` in place).
    pub fn synthesize(&self, jobs: &mut [Job]) -> Vec<Vec<usize>> {
        let n = jobs.len();
        let mut deps = vec![Vec::new(); n];
        match *self {
            DagConfig::Chain { length } => {
                let len = length.max(2);
                let mut g = 0;
                while g < n {
                    let end = (g + len).min(n);
                    for i in g + 1..end {
                        jobs[i].submit = jobs[g].submit;
                        deps[i] = vec![i - 1];
                    }
                    g = end;
                }
            }
            DagConfig::Fanout { width } => {
                let w = width.max(1);
                let group = w + 2;
                let mut g = 0;
                while g + group <= n {
                    let join = g + group - 1;
                    for i in g + 1..join {
                        jobs[i].submit = jobs[g].submit;
                        deps[i] = vec![g];
                    }
                    jobs[join].submit = jobs[g].submit;
                    deps[join] = (g + 1..join).collect();
                    g += group;
                }
            }
        }
        deps
    }
}

/// One materialized training/evaluation episode: feed `jobs` to
/// `Simulator::new` (or `load_trace`) under `params`, apply `deps`,
/// inject `events`, run — or let [`EpisodeSpec::install`] /
/// [`EpisodeSpec::simulator`] do all of that in the right order.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeSpec {
    /// The job list (overrunners' runtimes already inflated).
    pub jobs: Vec<Job>,
    /// Disruption events to inject before running.
    pub events: Vec<InjectedEvent>,
    /// Simulator parameters for this episode.
    pub params: SimParams,
    /// Workflow-DAG predecessor lists (empty = independent jobs).
    pub deps: Vec<Vec<usize>>,
}

impl EpisodeSpec {
    /// Load this episode into an existing simulator (the reuse path:
    /// jobs + params, then the dependency graph, then injected events).
    /// Every consumer must go through this (or [`EpisodeSpec::simulator`])
    /// so DAG episodes behave identically in the trainer, the rollout
    /// workers and the evaluation harness.
    pub fn install<Q: EventQueue>(&self, sim: &mut Simulator<Q>) -> Result<(), SimError> {
        sim.load(self.jobs.clone(), self.params)?;
        if !self.deps.is_empty() {
            sim.set_dependencies(self.deps.clone())?;
        }
        sim.inject_all(&self.events)
    }

    /// Build a fresh simulator for this episode on `system`.
    pub fn simulator(&self, system: SystemConfig) -> Result<Simulator, SimError> {
        let mut sim = Simulator::new(system, self.jobs.clone(), self.params)?;
        if !self.deps.is_empty() {
            sim.set_dependencies(self.deps.clone())?;
        }
        sim.inject_all(&self.events)?;
        Ok(sim)
    }

    /// A policy-independent lower bound on the episode's makespan: the
    /// maximum of the dependency-aware critical path (earliest completion
    /// over `deps`, measured from the first submit) and the per-resource
    /// area bound `⌈Σ demand_r · runtime / capacity_r⌉`.
    ///
    /// Effective runtimes are capped at the walltime estimate when
    /// enforcement is on (an overrunner is killed there). Injected
    /// *cancellations* can still undercut the bound — it is exact only
    /// for episodes that run their jobs to completion (the DAG and clean
    /// scenario families), which is where the evaluation harness uses it
    /// as the regret baseline.
    pub fn makespan_lower_bound(&self, system: &SystemConfig) -> SimTime {
        if self.jobs.is_empty() {
            return 0;
        }
        let n = self.jobs.len();
        let eff = |j: &Job| {
            if self.params.enforce_walltime {
                j.runtime.min(j.estimate)
            } else {
                j.runtime
            }
        };
        // Earliest completion times in topological order (Kahn).
        let mut ect = vec![0u64; n];
        if self.deps.is_empty() {
            for (i, j) in self.jobs.iter().enumerate() {
                ect[i] = j.submit + eff(j);
            }
        } else {
            let mut pending: Vec<usize> = self.deps.iter().map(Vec::len).collect();
            let mut succs = vec![Vec::new(); n];
            for (i, preds) in self.deps.iter().enumerate() {
                for &p in preds {
                    succs[p].push(i);
                }
            }
            let mut ready: Vec<usize> =
                (0..n).filter(|&i| pending[i] == 0).collect();
            while let Some(i) = ready.pop() {
                let gate = self.deps[i]
                    .iter()
                    .map(|&p| ect[p])
                    .max()
                    .unwrap_or(0)
                    .max(self.jobs[i].submit);
                ect[i] = gate + eff(&self.jobs[i]);
                for &s in &succs[i] {
                    pending[s] -= 1;
                    if pending[s] == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        let t0 = self.jobs.iter().map(|j| j.submit).min().unwrap_or(0);
        let critical_path =
            ect.iter().max().copied().unwrap_or(0).saturating_sub(t0);
        let area_bound = system
            .resources
            .iter()
            .enumerate()
            .map(|(r, res)| {
                let work: u64 = self
                    .jobs
                    .iter()
                    .map(|j| j.demands.get(r).copied().unwrap_or(0) * eff(j))
                    .sum();
                if res.capacity == 0 { 0 } else { work.div_ceil(res.capacity) }
            })
            .max()
            .unwrap_or(0);
        critical_path.max(area_bound)
    }
}

/// A named, seeded, reusable episode recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name ("clean", "cancel_heavy", ...).
    pub name: String,
    /// Base-job synthesis.
    pub source: JobSource,
    /// Resource-extension rules (BB participation, power, ...).
    pub spec: WorkloadSpec,
    /// Disruptions layered on each episode.
    pub disruption: DisruptionConfig,
    /// Simulator parameters.
    pub params: SimParams,
    /// Scenario-level seed, mixed with the episode index.
    pub seed: u64,
    /// Optional workflow-DAG overlay (chains / fan-outs over the
    /// materialized job list).
    #[serde(default)]
    pub dag: Option<DagConfig>,
}

impl Scenario {
    /// A clean (disruption-free) scenario.
    pub fn new(
        name: impl Into<String>,
        source: JobSource,
        spec: WorkloadSpec,
        params: SimParams,
    ) -> Self {
        Self {
            name: name.into(),
            source,
            spec,
            disruption: DisruptionConfig::default(),
            params,
            seed: 0,
            dag: None,
        }
    }

    /// Overlay a workflow DAG on every episode (returns a renamed copy,
    /// like [`Scenario::with_disruption`]).
    pub fn with_dag(mut self, name: impl Into<String>, dag: DagConfig) -> Self {
        self.name = name.into();
        self.dag = Some(dag);
        self
    }

    /// Attach a disruption layer (returns a renamed copy so curricula
    /// read naturally). Walltime enforcement switches on automatically
    /// when the disruption synthesizes overruns — they are inert
    /// otherwise.
    pub fn with_disruption(mut self, name: impl Into<String>, d: DisruptionConfig) -> Self {
        self.name = name.into();
        if d.overrun_fraction > 0.0 {
            self.params.enforce_walltime = true;
        }
        self.disruption = d;
        self
    }

    /// Set the scenario-level seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialize episode `episode` for `system`, deterministically.
    ///
    /// Sub-seeds for trace synthesis, resource extension and disruption
    /// placement are derived by mixing the scenario seed with the
    /// episode index, so distinct episodes differ while any two
    /// materializations of the same `(scenario, system, episode)` are
    /// identical.
    ///
    /// The job count is **not** fixed across episodes: a duration-driven
    /// source ([`JobSource::Stress`] with a horizon) stops at a virtual
    /// deadline rather than a job quota, so two episodes of the same
    /// scenario may legitimately differ in length. Consumers must size
    /// everything off `spec.jobs.len()`, never off a configured count.
    pub fn materialize(&self, system: &SystemConfig, episode: u64) -> EpisodeSpec {
        let base = mix_seed(self.seed, episode);
        let trace = self.source.trace(mix_seed(base, 1));
        let mut jobs = self.spec.build(&trace, system, mix_seed(base, 2));
        // The DAG overlay runs *before* disruption synthesis so cancel /
        // overrun placement sees the workflow-aligned submit times.
        let deps = match &self.dag {
            Some(dag) => dag.synthesize(&mut jobs),
            None => Vec::new(),
        };
        let disrupted = self.disruption.synthesize(&jobs, system, mix_seed(base, 3));
        EpisodeSpec {
            jobs: disrupted.jobs,
            events: disrupted.events,
            params: self.params,
            deps,
        }
    }
}

/// SplitMix64-style seed mixing: decorrelates derived seeds even for
/// adjacent inputs (scenario sub-seeds, per-episode rollout RNGs).
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Early phase advancement on a training-loss plateau: once the last
/// `window` round losses are all finite and span at most `tol`, the
/// phase ends even if its episode budget is not exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlateauRule {
    /// Consecutive round losses inspected (at least 2 to be meaningful).
    pub window: usize,
    /// Maximum spread (`max − min`) across the window that still counts
    /// as a plateau.
    pub tol: f32,
}

/// How a phase drives the agent's goal vector, per episode. Replaces
/// the old all-or-nothing goal override: a schedule can hold one vector
/// for the whole phase or anneal between two — e.g. ramping the power
/// weight in while an energy-aware phase progresses — without splitting
/// the phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GoalSchedule {
    /// The same goal vector for every episode of the phase.
    Fixed(Vec<f64>),
    /// Linear interpolation from `from` (first episode) to `to` (last
    /// episode of the phase). Both vectors must have the same length.
    Anneal {
        /// Goal vector at the phase's first episode.
        from: Vec<f64>,
        /// Goal vector at the phase's last episode.
        to: Vec<f64>,
    },
}

impl GoalSchedule {
    /// The goal vector for episode `episode` of a phase with
    /// `phase_episodes` episodes (clamped at the phase's end so plateau
    /// overshoot never extrapolates).
    pub fn goal_at(&self, episode: usize, phase_episodes: usize) -> Vec<f64> {
        match self {
            GoalSchedule::Fixed(g) => g.clone(),
            GoalSchedule::Anneal { from, to } => {
                let t = if phase_episodes <= 1 {
                    1.0
                } else {
                    (episode as f64 / (phase_episodes - 1) as f64).min(1.0)
                };
                from.iter().zip(to).map(|(a, b)| a + (b - a) * t).collect()
            }
        }
    }

    /// Does every episode of the phase see the same vector?
    pub fn is_fixed(&self) -> bool {
        matches!(self, GoalSchedule::Fixed(_))
    }
}

/// One phase of a curriculum: a scenario trained for a number of
/// episodes, optionally under a forced goal schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CurriculumPhase {
    /// The episode recipe.
    pub scenario: Scenario,
    /// How many episodes this phase trains (an upper bound when a
    /// [`PlateauRule`] is attached).
    pub episodes: usize,
    /// Goal schedule forced during this phase (`None` keeps the agent's
    /// configured goal mode — MRSch's dynamic Eq. 1 weights).
    pub goal: Option<GoalSchedule>,
    /// Optional loss-plateau early advancement (off by default: a phase
    /// runs its full episode budget).
    pub plateau: Option<PlateauRule>,
}

impl CurriculumPhase {
    /// Phase with the agent's own goal mode.
    pub fn new(scenario: Scenario, episodes: usize) -> Self {
        Self { scenario, episodes, goal: None, plateau: None }
    }

    /// Force a fixed goal vector for the phase.
    pub fn with_goal(mut self, goal: Vec<f64>) -> Self {
        self.goal = Some(GoalSchedule::Fixed(goal));
        self
    }

    /// Anneal the forced goal vector linearly across the phase — the
    /// per-phase goal schedule energy-aware curricula use to ramp the
    /// power weight in.
    pub fn with_goal_anneal(mut self, from: Vec<f64>, to: Vec<f64>) -> Self {
        assert_eq!(from.len(), to.len(), "anneal endpoints must match in length");
        self.goal = Some(GoalSchedule::Anneal { from, to });
        self
    }

    /// Advance to the next phase early once the round loss plateaus:
    /// the last `window` round losses must all be finite and differ by
    /// at most `tol`. `episodes` becomes an upper bound.
    pub fn advance_on_plateau(mut self, window: usize, tol: f32) -> Self {
        assert!(window >= 2, "a plateau needs at least two rounds");
        assert!(tol >= 0.0, "plateau tolerance must be non-negative");
        self.plateau = Some(PlateauRule { window, tol });
        self
    }

    /// Has this phase's plateau rule fired for the given per-round loss
    /// history? Always `false` without a rule, with fewer than `window`
    /// rounds, or while any inspected loss is non-finite (replay still
    /// warming up).
    pub fn plateau_reached(&self, round_losses: &[f32]) -> bool {
        let Some(rule) = self.plateau else { return false };
        if round_losses.len() < rule.window {
            return false;
        }
        let tail = &round_losses[round_losses.len() - rule.window..];
        if tail.iter().any(|l| !l.is_finite()) {
            return false;
        }
        let max = tail.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let min = tail.iter().cloned().fold(f32::INFINITY, f32::min);
        max - min <= rule.tol
    }
}

/// Where a training run currently stands inside a curriculum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CurriculumProgress {
    /// Index of the active phase.
    pub phase: usize,
    /// Name of the active phase's scenario.
    pub phase_name: String,
    /// Episodes completed within the active phase.
    pub episode_in_phase: usize,
    /// Episodes completed overall.
    pub completed: usize,
    /// Total episodes across all phases.
    pub total: usize,
}

impl std::fmt::Display for CurriculumProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase {} ({}) episode {} — {}/{} overall",
            self.phase, self.phase_name, self.episode_in_phase, self.completed, self.total
        )
    }
}

/// An ordered list of training phases.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Curriculum {
    phases: Vec<CurriculumPhase>,
}

impl Curriculum {
    /// Empty curriculum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a phase (builder style).
    pub fn phase(mut self, phase: CurriculumPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// The phases in training order.
    pub fn phases(&self) -> &[CurriculumPhase] {
        &self.phases
    }

    /// Total episodes across all phases.
    pub fn total_episodes(&self) -> usize {
        self.phases.iter().map(|p| p.episodes).sum()
    }

    /// Map a global episode index to `(phase index, phase, episode
    /// within phase)`; `None` past the end.
    pub fn locate(&self, episode: usize) -> Option<(usize, &CurriculumPhase, usize)> {
        let mut offset = episode;
        for (i, p) in self.phases.iter().enumerate() {
            if offset < p.episodes {
                return Some((i, p, offset));
            }
            offset -= p.episodes;
        }
        None
    }

    /// Progress after `completed` episodes (clamped to the curriculum's
    /// end; a finished curriculum reports its last phase).
    pub fn progress(&self, completed: usize) -> CurriculumProgress {
        let total = self.total_episodes();
        let done = completed.min(total);
        let (phase, name, in_phase) = self
            .locate(done.min(total.saturating_sub(1)))
            .map(|(i, p, e)| (i, p.scenario.name.clone(), e))
            .unwrap_or((0, String::new(), 0));
        CurriculumProgress {
            phase,
            phase_name: name,
            episode_in_phase: in_phase,
            completed: done,
            total,
        }
    }

    /// The canonical disruption-hardening curriculum: the clean scenario
    /// first, then a cancel/overrun-heavy variant, then a drain-heavy
    /// variant, `episodes` each. The disrupted phases reuse the clean
    /// scenario's source, spec, params and seed, so the *only*
    /// difference between phases is the disruption layer.
    pub fn disruption_hardening(
        clean: Scenario,
        cancel_heavy: DisruptionConfig,
        drain_heavy: DisruptionConfig,
        episodes: usize,
    ) -> Self {
        let cancel = clean.clone().with_disruption("cancel_heavy", cancel_heavy);
        let drain = clean.clone().with_disruption("drain_heavy", drain_heavy);
        Self::new()
            .phase(CurriculumPhase::new(clean, episodes))
            .phase(CurriculumPhase::new(cancel, episodes))
            .phase(CurriculumPhase::new(drain, episodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disruption::DrainSpec;
    use mrsim::event::EventKind;

    fn system() -> SystemConfig {
        SystemConfig::two_resource(32, 12)
    }

    fn theta_source(n: usize) -> JobSource {
        JobSource::Theta(ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(n) })
    }

    fn clean_scenario() -> Scenario {
        Scenario::new("clean", theta_source(30), WorkloadSpec::s1(), SimParams::new(5, true))
            .with_seed(7)
    }

    #[test]
    fn materialize_is_deterministic_per_episode() {
        let s = clean_scenario();
        let a = s.materialize(&system(), 3);
        let b = s.materialize(&system(), 3);
        assert_eq!(a, b, "same (scenario, episode) must be identical");
        let c = s.materialize(&system(), 4);
        assert_ne!(a.jobs, c.jobs, "episodes see different jobs");
    }

    #[test]
    fn fixed_trace_source_repeats_base_jobs() {
        let trace = ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(20) }.generate(1);
        let s = Scenario::new(
            "replay",
            JobSource::Trace(trace.clone()),
            WorkloadSpec::s1(),
            SimParams::new(5, true),
        );
        let a = s.materialize(&system(), 0);
        let b = s.materialize(&system(), 5);
        // Same base submits/runtimes; only the BB extension differs.
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.runtime, y.runtime);
        }
    }

    #[test]
    fn with_disruption_enables_walltime_for_overruns() {
        let d = DisruptionConfig { overrun_fraction: 0.3, ..Default::default() };
        let s = clean_scenario().with_disruption("overruns", d);
        assert!(s.params.enforce_walltime);
        assert_eq!(s.name, "overruns");
        let cancel_only =
            clean_scenario().with_disruption("cancels", DisruptionConfig {
                cancel_fraction: 0.3,
                ..Default::default()
            });
        assert!(!cancel_only.params.enforce_walltime, "cancels alone need no enforcement");
    }

    #[test]
    fn disrupted_scenario_emits_events() {
        let d = DisruptionConfig {
            cancel_fraction: 0.5,
            drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: 100, duration: 500 }],
            ..Default::default()
        };
        let ep = clean_scenario()
            .with_disruption("mixed", d)
            .materialize(&system(), 0);
        assert!(ep.events.iter().any(|e| matches!(e.kind, EventKind::Cancel(_))));
        assert!(ep
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CapacityChange { .. })));
    }

    #[test]
    fn dag_chain_groups_align_submits_and_link_predecessors() {
        let ep = clean_scenario()
            .with_dag("dag_chain", DagConfig::Chain { length: 3 })
            .materialize(&system(), 0);
        assert_eq!(ep.deps.len(), ep.jobs.len());
        for g in (0..ep.jobs.len()).step_by(3) {
            let end = (g + 3).min(ep.jobs.len());
            for i in g..end {
                assert_eq!(ep.jobs[i].submit, ep.jobs[g].submit, "workflow submits align");
                if i == g {
                    assert!(ep.deps[i].is_empty(), "head has no preds");
                } else {
                    assert_eq!(ep.deps[i], vec![i - 1], "chain link");
                }
            }
        }
    }

    #[test]
    fn dag_fanout_builds_root_middles_join() {
        let ep = clean_scenario()
            .with_dag("dag_fanout", DagConfig::Fanout { width: 3 })
            .materialize(&system(), 0);
        // Groups of 5: root, 3 middles, join; 30 jobs = 6 full groups.
        for g in (0..30).step_by(5) {
            assert!(ep.deps[g].is_empty());
            for i in g + 1..g + 4 {
                assert_eq!(ep.deps[i], vec![g]);
            }
            assert_eq!(ep.deps[g + 4], vec![g + 1, g + 2, g + 3]);
        }
    }

    #[test]
    fn dag_episode_installs_and_respects_ordering() {
        use mrsim::policy::HeadOfQueue;
        let ep = clean_scenario()
            .with_dag("dag_chain", DagConfig::Chain { length: 5 })
            .materialize(&system(), 1);
        let mut sim = ep.simulator(system()).expect("episode installs");
        let report = sim.run(&mut HeadOfQueue);
        let end_of = |id: usize| report.records.iter().find(|r| r.id == id).map(|r| r.end);
        for rec in &report.records {
            for &p in &ep.deps[rec.id] {
                let pe = end_of(p).expect("pred settled");
                assert!(rec.start >= pe, "task {} started before pred {p}", rec.id);
            }
        }
        // Reuse path materializes the same report bit for bit.
        let mut reused = ep.simulator(system()).expect("fresh");
        ep.install(&mut reused).expect("reinstall");
        assert_eq!(reused.run(&mut HeadOfQueue), report);
    }

    #[test]
    fn critical_path_bound_never_exceeds_actual_makespan() {
        use mrsim::policy::HeadOfQueue;
        for (name, dag) in [
            ("chain", Some(DagConfig::Chain { length: 4 })),
            ("fanout", Some(DagConfig::Fanout { width: 2 })),
            ("flat", None),
        ] {
            for episode in 0..3 {
                let mut s = clean_scenario();
                s.dag = dag;
                let ep = s.materialize(&system(), episode);
                let bound = ep.makespan_lower_bound(&system());
                let report = ep.simulator(system()).unwrap().run(&mut HeadOfQueue);
                assert!(
                    bound <= report.makespan,
                    "{name} ep {episode}: bound {bound} > makespan {}",
                    report.makespan
                );
                assert!(bound > 0, "{name}: bound must be informative");
            }
        }
    }

    #[test]
    fn chain_bound_is_at_least_the_sum_of_one_workflow() {
        // A single 3-chain of known runtimes pins the recurrence:
        // ect = submit + r0 + r1 + r2.
        let jobs = vec![
            Job::new(0, 5, 10, 10, vec![1, 0]),
            Job::new(1, 5, 20, 20, vec![1, 0]),
            Job::new(2, 5, 30, 30, vec![1, 0]),
        ];
        let ep = EpisodeSpec {
            jobs,
            events: Vec::new(),
            params: SimParams::new(4, true),
            deps: vec![vec![], vec![0], vec![1]],
        };
        assert_eq!(ep.makespan_lower_bound(&system()), 60);
    }

    #[test]
    fn stress_source_feeds_open_arrival_streams() {
        let cfg = crate::stress::StressConfig::engine(500, vec![32, 12])
            .with_arrivals(crate::stress::ArrivalProcess::Diurnal {
                period_secs: 10_000.0,
                amplitude: 0.8,
            })
            .with_horizon(40_000);
        let s = Scenario::new(
            "bursty",
            JobSource::Stress(cfg),
            WorkloadSpec::s1(),
            SimParams::new(5, true),
        )
        .with_seed(3);
        let a = s.materialize(&system(), 0);
        let b = s.materialize(&system(), 1);
        assert_eq!(a, s.materialize(&system(), 0), "deterministic per episode");
        // Duration-driven: different episodes may carry different counts.
        assert!(!a.jobs.is_empty() && !b.jobs.is_empty());
        assert!(a.jobs.iter().all(|j| j.submit <= 40_000));
    }

    #[test]
    fn goal_schedule_anneals_linearly_and_clamps() {
        let s = GoalSchedule::Anneal { from: vec![1.0, 0.0], to: vec![0.0, 1.0] };
        assert_eq!(s.goal_at(0, 5), vec![1.0, 0.0]);
        assert_eq!(s.goal_at(4, 5), vec![0.0, 1.0]);
        assert_eq!(s.goal_at(2, 5), vec![0.5, 0.5]);
        assert_eq!(s.goal_at(9, 5), vec![0.0, 1.0], "overshoot clamps");
        let f = GoalSchedule::Fixed(vec![0.3, 0.7]);
        assert!(f.is_fixed());
        assert_eq!(f.goal_at(3, 10), vec![0.3, 0.7]);
    }

    #[test]
    fn plateau_rule_fires_only_on_flat_finite_tails() {
        let phase = CurriculumPhase::new(clean_scenario(), 10).advance_on_plateau(3, 0.05);
        assert!(!phase.plateau_reached(&[]), "no history");
        assert!(!phase.plateau_reached(&[0.5, 0.5]), "window not filled");
        assert!(!phase.plateau_reached(&[f32::NAN, 0.5, 0.5]), "warm-up NaN blocks");
        assert!(!phase.plateau_reached(&[0.9, 0.5, 0.3]), "still descending");
        assert!(phase.plateau_reached(&[0.9, 0.31, 0.30, 0.28]), "flat tail fires");
        let off = CurriculumPhase::new(clean_scenario(), 10);
        assert!(!off.plateau_reached(&[0.3, 0.3, 0.3]), "off by default");
    }

    #[test]
    #[should_panic(expected = "at least two rounds")]
    fn plateau_window_of_one_rejected() {
        let _ = CurriculumPhase::new(clean_scenario(), 4).advance_on_plateau(1, 0.1);
    }

    #[test]
    fn curriculum_locates_episodes_and_tracks_progress() {
        let cur = Curriculum::disruption_hardening(
            clean_scenario(),
            DisruptionConfig { cancel_fraction: 0.3, ..Default::default() },
            DisruptionConfig::node_drain(0.25, 500, 2000),
            4,
        );
        assert_eq!(cur.phases().len(), 3);
        assert_eq!(cur.total_episodes(), 12);
        let (p0, ph0, e0) = cur.locate(0).unwrap();
        assert_eq!((p0, e0), (0, 0));
        assert_eq!(ph0.scenario.name, "clean");
        let (p1, ph1, e1) = cur.locate(5).unwrap();
        assert_eq!((p1, e1), (1, 1));
        assert_eq!(ph1.scenario.name, "cancel_heavy");
        let (p2, ph2, e2) = cur.locate(11).unwrap();
        assert_eq!((p2, e2), (2, 3));
        assert_eq!(ph2.scenario.name, "drain_heavy");
        assert!(cur.locate(12).is_none());
        let prog = cur.progress(5);
        assert_eq!(prog.phase, 1);
        assert_eq!(prog.completed, 5);
        assert_eq!(prog.total, 12);
        assert!(prog.to_string().contains("cancel_heavy"));
    }

    #[test]
    fn hardening_phases_share_everything_but_disruptions() {
        let cur = Curriculum::disruption_hardening(
            clean_scenario(),
            DisruptionConfig { cancel_fraction: 0.3, ..Default::default() },
            DisruptionConfig::node_drain(0.25, 500, 2000),
            2,
        );
        let phases = cur.phases();
        for p in &phases[1..] {
            assert_eq!(p.scenario.source, phases[0].scenario.source);
            assert_eq!(p.scenario.spec, phases[0].scenario.spec);
            assert_eq!(p.scenario.seed, phases[0].scenario.seed);
            assert_ne!(p.scenario.disruption, phases[0].scenario.disruption);
        }
    }
}
