//! Scenarios and training curricula: reusable, seeded episode specs.
//!
//! Before this module, every experiment passed `(job set, workload spec,
//! disruption config, sim params, seed)` tuples around by hand. A
//! [`Scenario`] bundles those into one named, reusable recipe:
//! *where jobs come from* ([`JobSource`]), *how they are extended into
//! multi-resource demands* ([`WorkloadSpec`]), *what goes wrong*
//! ([`DisruptionConfig`]) and *how the simulator runs*
//! ([`SimParams`]). [`Scenario::materialize`] turns the recipe plus an
//! episode index into a concrete [`EpisodeSpec`] — a job list and the
//! events to inject — fully deterministically: the same scenario and
//! episode index always yield the same episode, regardless of who
//! materializes it (the serial trainer, a rollout worker thread, or an
//! evaluation harness).
//!
//! A [`Curriculum`] is an ordered list of [`CurriculumPhase`]s (scenario
//! + episode count + optional goal-vector override) with progress
//! tracking — the structure the paper's clean-first training extends
//! into disruption hardening: train on clean traffic, then on
//! cancel/overrun-heavy traffic, then on drain-heavy traffic
//! ([`Curriculum::disruption_hardening`]).

use crate::disruption::DisruptionConfig;
use crate::suite::WorkloadSpec;
use crate::theta::{ThetaConfig, TraceJob};
use mrsim::event::InjectedEvent;
use mrsim::job::Job;
use mrsim::resources::SystemConfig;
use mrsim::simulator::SimParams;
use serde::{Deserialize, Serialize};

/// Where a scenario's base jobs come from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobSource {
    /// Synthesize a fresh Theta-like trace per episode (each episode
    /// sees different jobs, seeded by the episode index).
    Theta(ThetaConfig),
    /// A fixed base trace replayed every episode (resource extension
    /// and disruptions still vary per episode).
    Trace(Vec<TraceJob>),
}

impl JobSource {
    /// The base trace for one episode.
    pub fn trace(&self, seed: u64) -> Vec<TraceJob> {
        match self {
            JobSource::Theta(cfg) => cfg.generate(seed),
            JobSource::Trace(jobs) => jobs.clone(),
        }
    }
}

/// One materialized training/evaluation episode: feed `jobs` to
/// `Simulator::new` (or `load_trace`) under `params`, inject `events`,
/// run.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeSpec {
    /// The job list (overrunners' runtimes already inflated).
    pub jobs: Vec<Job>,
    /// Disruption events to inject before running.
    pub events: Vec<InjectedEvent>,
    /// Simulator parameters for this episode.
    pub params: SimParams,
}

/// A named, seeded, reusable episode recipe.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name ("clean", "cancel_heavy", ...).
    pub name: String,
    /// Base-job synthesis.
    pub source: JobSource,
    /// Resource-extension rules (BB participation, power, ...).
    pub spec: WorkloadSpec,
    /// Disruptions layered on each episode.
    pub disruption: DisruptionConfig,
    /// Simulator parameters.
    pub params: SimParams,
    /// Scenario-level seed, mixed with the episode index.
    pub seed: u64,
}

impl Scenario {
    /// A clean (disruption-free) scenario.
    pub fn new(
        name: impl Into<String>,
        source: JobSource,
        spec: WorkloadSpec,
        params: SimParams,
    ) -> Self {
        Self {
            name: name.into(),
            source,
            spec,
            disruption: DisruptionConfig::default(),
            params,
            seed: 0,
        }
    }

    /// Attach a disruption layer (returns a renamed copy so curricula
    /// read naturally). Walltime enforcement switches on automatically
    /// when the disruption synthesizes overruns — they are inert
    /// otherwise.
    pub fn with_disruption(mut self, name: impl Into<String>, d: DisruptionConfig) -> Self {
        self.name = name.into();
        if d.overrun_fraction > 0.0 {
            self.params.enforce_walltime = true;
        }
        self.disruption = d;
        self
    }

    /// Set the scenario-level seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialize episode `episode` for `system`, deterministically.
    ///
    /// Sub-seeds for trace synthesis, resource extension and disruption
    /// placement are derived by mixing the scenario seed with the
    /// episode index, so distinct episodes differ while any two
    /// materializations of the same `(scenario, system, episode)` are
    /// identical.
    pub fn materialize(&self, system: &SystemConfig, episode: u64) -> EpisodeSpec {
        let base = mix_seed(self.seed, episode);
        let trace = self.source.trace(mix_seed(base, 1));
        let jobs = self.spec.build(&trace, system, mix_seed(base, 2));
        let disrupted = self.disruption.synthesize(&jobs, system, mix_seed(base, 3));
        EpisodeSpec { jobs: disrupted.jobs, events: disrupted.events, params: self.params }
    }
}

/// SplitMix64-style seed mixing: decorrelates derived seeds even for
/// adjacent inputs (scenario sub-seeds, per-episode rollout RNGs).
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Early phase advancement on a training-loss plateau: once the last
/// `window` round losses are all finite and span at most `tol`, the
/// phase ends even if its episode budget is not exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlateauRule {
    /// Consecutive round losses inspected (at least 2 to be meaningful).
    pub window: usize,
    /// Maximum spread (`max − min`) across the window that still counts
    /// as a plateau.
    pub tol: f32,
}

/// One phase of a curriculum: a scenario trained for a number of
/// episodes, optionally under a fixed goal vector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CurriculumPhase {
    /// The episode recipe.
    pub scenario: Scenario,
    /// How many episodes this phase trains (an upper bound when a
    /// [`PlateauRule`] is attached).
    pub episodes: usize,
    /// Fixed goal vector forced during this phase (`None` keeps the
    /// agent's configured goal mode — MRSch's dynamic Eq. 1 weights).
    pub goal_override: Option<Vec<f64>>,
    /// Optional loss-plateau early advancement (off by default: a phase
    /// runs its full episode budget).
    pub plateau: Option<PlateauRule>,
}

impl CurriculumPhase {
    /// Phase with the agent's own goal mode.
    pub fn new(scenario: Scenario, episodes: usize) -> Self {
        Self { scenario, episodes, goal_override: None, plateau: None }
    }

    /// Force a fixed goal vector for the phase.
    pub fn with_goal(mut self, goal: Vec<f64>) -> Self {
        self.goal_override = Some(goal);
        self
    }

    /// Advance to the next phase early once the round loss plateaus:
    /// the last `window` round losses must all be finite and differ by
    /// at most `tol`. `episodes` becomes an upper bound.
    pub fn advance_on_plateau(mut self, window: usize, tol: f32) -> Self {
        assert!(window >= 2, "a plateau needs at least two rounds");
        assert!(tol >= 0.0, "plateau tolerance must be non-negative");
        self.plateau = Some(PlateauRule { window, tol });
        self
    }

    /// Has this phase's plateau rule fired for the given per-round loss
    /// history? Always `false` without a rule, with fewer than `window`
    /// rounds, or while any inspected loss is non-finite (replay still
    /// warming up).
    pub fn plateau_reached(&self, round_losses: &[f32]) -> bool {
        let Some(rule) = self.plateau else { return false };
        if round_losses.len() < rule.window {
            return false;
        }
        let tail = &round_losses[round_losses.len() - rule.window..];
        if tail.iter().any(|l| !l.is_finite()) {
            return false;
        }
        let max = tail.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let min = tail.iter().cloned().fold(f32::INFINITY, f32::min);
        max - min <= rule.tol
    }
}

/// Where a training run currently stands inside a curriculum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CurriculumProgress {
    /// Index of the active phase.
    pub phase: usize,
    /// Name of the active phase's scenario.
    pub phase_name: String,
    /// Episodes completed within the active phase.
    pub episode_in_phase: usize,
    /// Episodes completed overall.
    pub completed: usize,
    /// Total episodes across all phases.
    pub total: usize,
}

impl std::fmt::Display for CurriculumProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase {} ({}) episode {} — {}/{} overall",
            self.phase, self.phase_name, self.episode_in_phase, self.completed, self.total
        )
    }
}

/// An ordered list of training phases.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Curriculum {
    phases: Vec<CurriculumPhase>,
}

impl Curriculum {
    /// Empty curriculum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a phase (builder style).
    pub fn phase(mut self, phase: CurriculumPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// The phases in training order.
    pub fn phases(&self) -> &[CurriculumPhase] {
        &self.phases
    }

    /// Total episodes across all phases.
    pub fn total_episodes(&self) -> usize {
        self.phases.iter().map(|p| p.episodes).sum()
    }

    /// Map a global episode index to `(phase index, phase, episode
    /// within phase)`; `None` past the end.
    pub fn locate(&self, episode: usize) -> Option<(usize, &CurriculumPhase, usize)> {
        let mut offset = episode;
        for (i, p) in self.phases.iter().enumerate() {
            if offset < p.episodes {
                return Some((i, p, offset));
            }
            offset -= p.episodes;
        }
        None
    }

    /// Progress after `completed` episodes (clamped to the curriculum's
    /// end; a finished curriculum reports its last phase).
    pub fn progress(&self, completed: usize) -> CurriculumProgress {
        let total = self.total_episodes();
        let done = completed.min(total);
        let (phase, name, in_phase) = self
            .locate(done.min(total.saturating_sub(1)))
            .map(|(i, p, e)| (i, p.scenario.name.clone(), e))
            .unwrap_or((0, String::new(), 0));
        CurriculumProgress {
            phase,
            phase_name: name,
            episode_in_phase: in_phase,
            completed: done,
            total,
        }
    }

    /// The canonical disruption-hardening curriculum: the clean scenario
    /// first, then a cancel/overrun-heavy variant, then a drain-heavy
    /// variant, `episodes` each. The disrupted phases reuse the clean
    /// scenario's source, spec, params and seed, so the *only*
    /// difference between phases is the disruption layer.
    pub fn disruption_hardening(
        clean: Scenario,
        cancel_heavy: DisruptionConfig,
        drain_heavy: DisruptionConfig,
        episodes: usize,
    ) -> Self {
        let cancel = clean.clone().with_disruption("cancel_heavy", cancel_heavy);
        let drain = clean.clone().with_disruption("drain_heavy", drain_heavy);
        Self::new()
            .phase(CurriculumPhase::new(clean, episodes))
            .phase(CurriculumPhase::new(cancel, episodes))
            .phase(CurriculumPhase::new(drain, episodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disruption::DrainSpec;
    use mrsim::event::EventKind;

    fn system() -> SystemConfig {
        SystemConfig::two_resource(32, 12)
    }

    fn theta_source(n: usize) -> JobSource {
        JobSource::Theta(ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(n) })
    }

    fn clean_scenario() -> Scenario {
        Scenario::new("clean", theta_source(30), WorkloadSpec::s1(), SimParams::new(5, true))
            .with_seed(7)
    }

    #[test]
    fn materialize_is_deterministic_per_episode() {
        let s = clean_scenario();
        let a = s.materialize(&system(), 3);
        let b = s.materialize(&system(), 3);
        assert_eq!(a, b, "same (scenario, episode) must be identical");
        let c = s.materialize(&system(), 4);
        assert_ne!(a.jobs, c.jobs, "episodes see different jobs");
    }

    #[test]
    fn fixed_trace_source_repeats_base_jobs() {
        let trace = ThetaConfig { machine_nodes: 32, ..ThetaConfig::scaled(20) }.generate(1);
        let s = Scenario::new(
            "replay",
            JobSource::Trace(trace.clone()),
            WorkloadSpec::s1(),
            SimParams::new(5, true),
        );
        let a = s.materialize(&system(), 0);
        let b = s.materialize(&system(), 5);
        // Same base submits/runtimes; only the BB extension differs.
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.runtime, y.runtime);
        }
    }

    #[test]
    fn with_disruption_enables_walltime_for_overruns() {
        let d = DisruptionConfig { overrun_fraction: 0.3, ..Default::default() };
        let s = clean_scenario().with_disruption("overruns", d);
        assert!(s.params.enforce_walltime);
        assert_eq!(s.name, "overruns");
        let cancel_only =
            clean_scenario().with_disruption("cancels", DisruptionConfig {
                cancel_fraction: 0.3,
                ..Default::default()
            });
        assert!(!cancel_only.params.enforce_walltime, "cancels alone need no enforcement");
    }

    #[test]
    fn disrupted_scenario_emits_events() {
        let d = DisruptionConfig {
            cancel_fraction: 0.5,
            drains: vec![DrainSpec { resource: 0, fraction: 0.25, at: 100, duration: 500 }],
            ..Default::default()
        };
        let ep = clean_scenario()
            .with_disruption("mixed", d)
            .materialize(&system(), 0);
        assert!(ep.events.iter().any(|e| matches!(e.kind, EventKind::Cancel(_))));
        assert!(ep
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CapacityChange { .. })));
    }

    #[test]
    fn plateau_rule_fires_only_on_flat_finite_tails() {
        let phase = CurriculumPhase::new(clean_scenario(), 10).advance_on_plateau(3, 0.05);
        assert!(!phase.plateau_reached(&[]), "no history");
        assert!(!phase.plateau_reached(&[0.5, 0.5]), "window not filled");
        assert!(!phase.plateau_reached(&[f32::NAN, 0.5, 0.5]), "warm-up NaN blocks");
        assert!(!phase.plateau_reached(&[0.9, 0.5, 0.3]), "still descending");
        assert!(phase.plateau_reached(&[0.9, 0.31, 0.30, 0.28]), "flat tail fires");
        let off = CurriculumPhase::new(clean_scenario(), 10);
        assert!(!off.plateau_reached(&[0.3, 0.3, 0.3]), "off by default");
    }

    #[test]
    #[should_panic(expected = "at least two rounds")]
    fn plateau_window_of_one_rejected() {
        let _ = CurriculumPhase::new(clean_scenario(), 4).advance_on_plateau(1, 0.1);
    }

    #[test]
    fn curriculum_locates_episodes_and_tracks_progress() {
        let cur = Curriculum::disruption_hardening(
            clean_scenario(),
            DisruptionConfig { cancel_fraction: 0.3, ..Default::default() },
            DisruptionConfig::node_drain(0.25, 500, 2000),
            4,
        );
        assert_eq!(cur.phases().len(), 3);
        assert_eq!(cur.total_episodes(), 12);
        let (p0, ph0, e0) = cur.locate(0).unwrap();
        assert_eq!((p0, e0), (0, 0));
        assert_eq!(ph0.scenario.name, "clean");
        let (p1, ph1, e1) = cur.locate(5).unwrap();
        assert_eq!((p1, e1), (1, 1));
        assert_eq!(ph1.scenario.name, "cancel_heavy");
        let (p2, ph2, e2) = cur.locate(11).unwrap();
        assert_eq!((p2, e2), (2, 3));
        assert_eq!(ph2.scenario.name, "drain_heavy");
        assert!(cur.locate(12).is_none());
        let prog = cur.progress(5);
        assert_eq!(prog.phase, 1);
        assert_eq!(prog.completed, 5);
        assert_eq!(prog.total, 12);
        assert!(prog.to_string().contains("cancel_heavy"));
    }

    #[test]
    fn hardening_phases_share_everything_but_disruptions() {
        let cur = Curriculum::disruption_hardening(
            clean_scenario(),
            DisruptionConfig { cancel_fraction: 0.3, ..Default::default() },
            DisruptionConfig::node_drain(0.25, 500, 2000),
            2,
        );
        let phases = cur.phases();
        for p in &phases[1..] {
            assert_eq!(p.scenario.source, phases[0].scenario.source);
            assert_eq!(p.scenario.spec, phases[0].scenario.spec);
            assert_eq!(p.scenario.seed, phases[0].scenario.seed);
            assert_ne!(p.scenario.disruption, phases[0].scenario.disruption);
        }
    }
}
