//! Seeded synthetic stress traces for engine benchmarks and large-scale
//! determinism tests.
//!
//! The Theta synthesizer ([`crate::theta`]) models a real machine:
//! day-scale runtimes, diurnal arrivals, power-of-two node blocks. That
//! realism is wrong for *engine* stress: simulating a million day-scale
//! jobs takes a million days of virtual time with a deep, slow wait
//! queue, and the run measures queue-scan overhead rather than event
//! throughput. This module instead synthesizes traces tuned for the
//! event engine: short exponential runtimes, Poisson arrivals at a
//! configurable **offered load** kept below 1.0 (so the wait queue stays
//! shallow and steady-state), and modest per-job demands. A million jobs
//! then means ~3–4 million events simulated in seconds.
//!
//! Determinism contract: `generate(seed)` is a pure function — same
//! config, same seed, same jobs, bit for bit — because the large-trace
//! suite replays these traces across queue implementations and shard
//! counts and diffs the full reports.

use mrsim::job::Job;
use mrsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist;

/// How arrivals are spaced over time. All variants are Poisson at heart;
/// the non-trivial ones modulate the instantaneous rate so episodes look
/// like *open* arrival streams (rush hours, request storms) instead of a
/// fixed batch dropped at t = 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals (the original stress behaviour).
    #[default]
    Poisson,
    /// Sinusoidal rate modulation with the given period: the
    /// instantaneous rate is `base · (1 + amplitude · sin(2π t/period))`,
    /// so arrivals bunch during the "daytime" half of each period.
    /// `amplitude` must stay in `[0, 1)`.
    Diurnal {
        /// Modulation period in seconds (86 400 for a daily cycle).
        period_secs: f64,
        /// Modulation strength in `[0, 1)`; 0 degenerates to Poisson.
        amplitude: f64,
    },
    /// FaaS-like request storms: within the first `burst_fraction` of
    /// each period the rate is multiplied by `boost`; outside it the
    /// rate is scaled down so the *mean* offered load still matches the
    /// configured utilization target.
    Spike {
        /// Storm recurrence period in seconds.
        period_secs: f64,
        /// Fraction of each period spent inside the storm, in `(0, 1)`.
        burst_fraction: f64,
        /// Rate multiplier during the storm (≥ 1).
        boost: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous rate multiplier at absolute time `t` (mean ≈ 1 over
    /// a full period, so the configured utilization stays the long-run
    /// offered load).
    fn rate_scale(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson => 1.0,
            ArrivalProcess::Diurnal { period_secs, amplitude } => {
                let phase = (t / period_secs) * std::f64::consts::TAU;
                (1.0 + amplitude * phase.sin()).max(0.05)
            }
            ArrivalProcess::Spike { period_secs, burst_fraction, boost } => {
                // Normalize so E[scale] = 1: burst·boost + (1-burst)·low = 1.
                let low =
                    ((1.0 - burst_fraction * boost) / (1.0 - burst_fraction)).max(0.05);
                let pos = (t / period_secs).fract();
                if pos < burst_fraction {
                    boost
                } else {
                    low
                }
            }
        }
    }
}

/// Recipe for a stress trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StressConfig {
    /// Number of jobs to synthesize (an upper bound when `horizon` is
    /// set — see [`StressConfig::generate`]).
    pub num_jobs: usize,
    /// Per-resource system capacities (demands are clamped to these).
    pub capacities: Vec<u64>,
    /// Target offered load on resource 0 (fraction of capacity-seconds;
    /// keep below 1.0 or the wait queue grows without bound).
    pub utilization: f64,
    /// Mean job runtime in seconds (exponential).
    pub mean_runtime: f64,
    /// Maximum walltime over-estimation factor: estimates are drawn
    /// uniformly from `runtime..=runtime * (1 + estimate_slack)`.
    pub estimate_slack: f64,
    /// How arrivals are spaced (Poisson, diurnal waves, or spikes).
    #[serde(default)]
    pub arrivals: ArrivalProcess,
    /// Duration-driven generation: when set, arrivals stop at this
    /// virtual time instead of at a fixed job count, so the episode's
    /// job count becomes seed-dependent (`num_jobs` stays a hard cap).
    #[serde(default)]
    pub horizon: Option<SimTime>,
}

impl StressConfig {
    /// Engine-benchmark preset: demands up to 1/8 of each pool, 90 s
    /// mean runtime, 70 % offered load.
    pub fn engine(num_jobs: usize, capacities: Vec<u64>) -> Self {
        Self {
            num_jobs,
            capacities,
            utilization: 0.7,
            mean_runtime: 90.0,
            estimate_slack: 0.5,
            arrivals: ArrivalProcess::Poisson,
            horizon: None,
        }
    }

    /// Swap in a different arrival process (builder style).
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Generate until `horizon` seconds of arrivals instead of a fixed
    /// count; `num_jobs` becomes the safety cap.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Synthesize the trace. Jobs have dense ids `0..len` and
    /// nondecreasing integer submit times. With a [`horizon`] set the
    /// trace length is *duration-driven*: generation stops at the first
    /// arrival past the horizon (or at `num_jobs`, whichever comes
    /// first), so different seeds yield different job counts — the
    /// open-stream property bursty scenarios rely on.
    ///
    /// [`horizon`]: StressConfig::horizon
    pub fn generate(&self, seed: u64) -> Vec<Job> {
        assert!(!self.capacities.is_empty(), "at least one resource");
        assert!(self.utilization > 0.0, "positive offered load");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5745_5353_5452_5353); // "STRESS"
        // Demands are uniform on 1..=cap/8 (min 1), so the mean demand
        // fraction on resource 0 sets the arrival rate that hits the
        // utilization target: interarrival = E[d0]·E[rt] / (cap0·util).
        let max_demand: Vec<u64> =
            self.capacities.iter().map(|&c| (c / 8).max(1)).collect();
        let mean_d0 = (1.0 + max_demand[0] as f64) / 2.0;
        let mean_interarrival =
            mean_d0 * self.mean_runtime / (self.capacities[0] as f64 * self.utilization);
        let mut jobs = Vec::with_capacity(self.num_jobs.min(1 << 20));
        let mut clock = 0.0f64;
        for id in 0..self.num_jobs {
            let base = dist::exponential(&mut rng, mean_interarrival);
            clock += base / self.arrivals.rate_scale(clock);
            if let Some(h) = self.horizon {
                if clock as SimTime > h {
                    break;
                }
            }
            let runtime = dist::exponential(&mut rng, self.mean_runtime)
                .clamp(1.0, self.mean_runtime * 20.0);
            let estimate = runtime * rng.gen_range(1.0..=1.0 + self.estimate_slack);
            let demands: Vec<u64> = max_demand
                .iter()
                .zip(&self.capacities)
                .map(|(&m, &c)| rng.gen_range(1..=m).min(c))
                .collect();
            jobs.push(Job::new(
                id,
                clock as SimTime,
                runtime.ceil() as SimTime,
                estimate.ceil() as SimTime,
                demands,
            ));
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> StressConfig {
        StressConfig::engine(n, vec![512, 64])
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = cfg(500).generate(7);
        let b = cfg(500).generate(7);
        assert_eq!(a, b);
        assert_ne!(a, cfg(500).generate(8), "different seeds differ");
    }

    #[test]
    fn jobs_are_dense_sorted_and_feasible() {
        let jobs = cfg(2_000).generate(42);
        assert_eq!(jobs.len(), 2_000);
        let mut last = 0;
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i, "dense ids");
            assert!(j.submit >= last, "nondecreasing submits");
            last = j.submit;
            assert!(j.runtime >= 1 && j.estimate >= j.runtime, "estimate bounds runtime");
            assert!(j.demands.iter().zip(&[512u64, 64]).all(|(d, c)| *d >= 1 && d <= c));
        }
    }

    #[test]
    fn poisson_arrivals_unchanged_by_arrival_process_plumbing() {
        // The explicit Poisson variant must reproduce the legacy stream
        // bit for bit: the rate scale of 1.0 divides out before the cast.
        let legacy = cfg(300).generate(5);
        let explicit = cfg(300).with_arrivals(ArrivalProcess::Poisson).generate(5);
        assert_eq!(legacy, explicit);
    }

    #[test]
    fn diurnal_arrivals_bunch_in_the_peak_half() {
        let c = cfg(20_000).with_arrivals(ArrivalProcess::Diurnal {
            period_secs: 10_000.0,
            amplitude: 0.8,
        });
        let jobs = c.generate(11);
        // Peak half of each period = sin > 0 = first half-period.
        let peak = jobs
            .iter()
            .filter(|j| (j.submit as f64 / 10_000.0).fract() < 0.5)
            .count();
        assert!(
            peak as f64 > 0.60 * jobs.len() as f64,
            "peak half should dominate: {peak}/{}",
            jobs.len()
        );
    }

    #[test]
    fn spike_arrivals_storm_inside_the_burst_window() {
        let c = cfg(20_000).with_arrivals(ArrivalProcess::Spike {
            period_secs: 10_000.0,
            burst_fraction: 0.1,
            boost: 6.0,
        });
        let jobs = c.generate(13);
        let in_burst = jobs
            .iter()
            .filter(|j| (j.submit as f64 / 10_000.0).fract() < 0.1)
            .count();
        // A 10 % window at 6x rate should hold far more than 10 % of
        // arrivals (~40 % after normalization).
        assert!(
            in_burst as f64 > 0.30 * jobs.len() as f64,
            "burst window should concentrate arrivals: {in_burst}/{}",
            jobs.len()
        );
    }

    #[test]
    fn horizon_caps_duration_not_count() {
        let c = cfg(1_000_000).with_horizon(50_000);
        let jobs = c.generate(3);
        assert!(jobs.len() < 1_000_000, "horizon must terminate generation");
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j.submit <= 50_000));
        // Duration-driven counts are seed-dependent in general, but every
        // seed yields the same trace deterministically.
        assert_eq!(jobs, c.generate(3));
    }

    #[test]
    fn offered_load_tracks_the_target() {
        let c = cfg(20_000);
        let jobs = c.generate(3);
        let span = (jobs.last().unwrap().submit - jobs[0].submit) as f64;
        let work: f64 = jobs.iter().map(|j| (j.demands[0] * j.runtime) as f64).sum();
        let offered = work / (span * c.capacities[0] as f64);
        assert!(
            (offered - c.utilization).abs() < 0.1,
            "offered load {offered:.3} should approximate target {:.3}",
            c.utilization
        );
    }
}
