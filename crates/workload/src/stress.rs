//! Seeded synthetic stress traces for engine benchmarks and large-scale
//! determinism tests.
//!
//! The Theta synthesizer ([`crate::theta`]) models a real machine:
//! day-scale runtimes, diurnal arrivals, power-of-two node blocks. That
//! realism is wrong for *engine* stress: simulating a million day-scale
//! jobs takes a million days of virtual time with a deep, slow wait
//! queue, and the run measures queue-scan overhead rather than event
//! throughput. This module instead synthesizes traces tuned for the
//! event engine: short exponential runtimes, Poisson arrivals at a
//! configurable **offered load** kept below 1.0 (so the wait queue stays
//! shallow and steady-state), and modest per-job demands. A million jobs
//! then means ~3–4 million events simulated in seconds.
//!
//! Determinism contract: `generate(seed)` is a pure function — same
//! config, same seed, same jobs, bit for bit — because the large-trace
//! suite replays these traces across queue implementations and shard
//! counts and diffs the full reports.

use mrsim::job::Job;
use mrsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist;

/// Recipe for a stress trace.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Number of jobs to synthesize.
    pub num_jobs: usize,
    /// Per-resource system capacities (demands are clamped to these).
    pub capacities: Vec<u64>,
    /// Target offered load on resource 0 (fraction of capacity-seconds;
    /// keep below 1.0 or the wait queue grows without bound).
    pub utilization: f64,
    /// Mean job runtime in seconds (exponential).
    pub mean_runtime: f64,
    /// Maximum walltime over-estimation factor: estimates are drawn
    /// uniformly from `runtime..=runtime * (1 + estimate_slack)`.
    pub estimate_slack: f64,
}

impl StressConfig {
    /// Engine-benchmark preset: demands up to 1/8 of each pool, 90 s
    /// mean runtime, 70 % offered load.
    pub fn engine(num_jobs: usize, capacities: Vec<u64>) -> Self {
        Self { num_jobs, capacities, utilization: 0.7, mean_runtime: 90.0, estimate_slack: 0.5 }
    }

    /// Synthesize the trace. Jobs have dense ids `0..num_jobs` and
    /// nondecreasing integer submit times.
    pub fn generate(&self, seed: u64) -> Vec<Job> {
        assert!(!self.capacities.is_empty(), "at least one resource");
        assert!(self.utilization > 0.0, "positive offered load");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5745_5353_5452_5353); // "STRESS"
        // Demands are uniform on 1..=cap/8 (min 1), so the mean demand
        // fraction on resource 0 sets the arrival rate that hits the
        // utilization target: interarrival = E[d0]·E[rt] / (cap0·util).
        let max_demand: Vec<u64> =
            self.capacities.iter().map(|&c| (c / 8).max(1)).collect();
        let mean_d0 = (1.0 + max_demand[0] as f64) / 2.0;
        let mean_interarrival =
            mean_d0 * self.mean_runtime / (self.capacities[0] as f64 * self.utilization);
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut clock = 0.0f64;
        for id in 0..self.num_jobs {
            clock += dist::exponential(&mut rng, mean_interarrival);
            let runtime = dist::exponential(&mut rng, self.mean_runtime)
                .clamp(1.0, self.mean_runtime * 20.0);
            let estimate = runtime * rng.gen_range(1.0..=1.0 + self.estimate_slack);
            let demands: Vec<u64> = max_demand
                .iter()
                .zip(&self.capacities)
                .map(|(&m, &c)| rng.gen_range(1..=m).min(c))
                .collect();
            jobs.push(Job::new(
                id,
                clock as SimTime,
                runtime.ceil() as SimTime,
                estimate.ceil() as SimTime,
                demands,
            ));
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> StressConfig {
        StressConfig::engine(n, vec![512, 64])
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = cfg(500).generate(7);
        let b = cfg(500).generate(7);
        assert_eq!(a, b);
        assert_ne!(a, cfg(500).generate(8), "different seeds differ");
    }

    #[test]
    fn jobs_are_dense_sorted_and_feasible() {
        let jobs = cfg(2_000).generate(42);
        assert_eq!(jobs.len(), 2_000);
        let mut last = 0;
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i, "dense ids");
            assert!(j.submit >= last, "nondecreasing submits");
            last = j.submit;
            assert!(j.runtime >= 1 && j.estimate >= j.runtime, "estimate bounds runtime");
            assert!(j.demands.iter().zip(&[512u64, 64]).all(|(d, c)| *d >= 1 && d <= c));
        }
    }

    #[test]
    fn offered_load_tracks_the_target() {
        let c = cfg(20_000);
        let jobs = c.generate(3);
        let span = (jobs.last().unwrap().submit - jobs[0].submit) as f64;
        let work: f64 = jobs.iter().map(|j| (j.demands[0] * j.runtime) as f64).sum();
        let offered = work / (span * c.capacities[0] as f64);
        assert!(
            (offered - c.utilization).abs() < 0.1,
            "offered load {offered:.3} should approximate target {:.3}",
            c.utilization
        );
    }
}
