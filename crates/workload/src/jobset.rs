//! Job sets and the three-phase training curriculum (§III-D, Fig. 4).
//!
//! The paper trains on three kinds of job sets:
//!
//! * **sampled** — jobs sampled from the real trace with *controlled*
//!   Poisson arrivals at the trace's average inter-arrival time ("the
//!   easiest learning environment"),
//! * **real** — contiguous slices of the original trace with its natural
//!   bursty arrivals,
//! * **synthetic** — freshly generated jobs mimicking the trace's
//!   patterns, covering rare states.
//!
//! Fig. 4 compares the six orderings of these three phases;
//! [`CurriculumOrder`] enumerates them.

use crate::dist;
use crate::theta::{ThetaConfig, TraceJob};
use mrsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three job-set kinds of the training curriculum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobSetKind {
    /// Trace sample with controlled Poisson arrivals.
    Sampled,
    /// Contiguous slice of the real trace.
    Real,
    /// Freshly synthesized jobs.
    Synthetic,
}

impl JobSetKind {
    /// Short label used in Fig. 4 legends.
    pub fn label(self) -> &'static str {
        match self {
            JobSetKind::Sampled => "Sampled",
            JobSetKind::Real => "Real",
            JobSetKind::Synthetic => "Synthetic",
        }
    }
}

/// One of the six phase orderings compared in Fig. 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurriculumOrder(pub [JobSetKind; 3]);

impl CurriculumOrder {
    /// The paper's recommended curriculum: sampled → real → synthetic.
    pub fn recommended() -> Self {
        Self([JobSetKind::Sampled, JobSetKind::Real, JobSetKind::Synthetic])
    }

    /// All six permutations, in the order the Fig. 4 legend lists them.
    pub fn all() -> Vec<Self> {
        use JobSetKind::*;
        vec![
            Self([Real, Sampled, Synthetic]),
            Self([Real, Synthetic, Sampled]),
            Self([Synthetic, Real, Sampled]),
            Self([Synthetic, Sampled, Real]),
            Self([Sampled, Synthetic, Real]),
            Self([Sampled, Real, Synthetic]),
        ]
    }

    /// Legend label, e.g. `"Sampled+Real+Synthetic"`.
    pub fn label(&self) -> String {
        self.0.iter().map(|k| k.label()).collect::<Vec<_>>().join("+")
    }
}

/// Split a trace into `k` contiguous job sets of (nearly) equal size, each
/// rebased so its first job submits at time 0.
pub fn real_jobsets(trace: &[TraceJob], k: usize) -> Vec<Vec<TraceJob>> {
    assert!(k >= 1, "real_jobsets: k must be >= 1");
    let chunk = trace.len().div_ceil(k);
    trace
        .chunks(chunk.max(1))
        .map(|c| rebase(c.to_vec()))
        .collect()
}

/// Sample `n` jobs (with replacement) from the trace and give them fresh
/// Poisson arrivals at the trace's mean inter-arrival time — the
/// "controlled job arrival rates" of §III-D.
pub fn sampled_jobset(trace: &[TraceJob], n: usize, seed: u64) -> Vec<TraceJob> {
    assert!(!trace.is_empty(), "sampled_jobset: empty trace");
    let mut rng = StdRng::seed_from_u64(seed);
    let mean = mean_interarrival(trace);
    let mut clock = 0.0f64;
    (0..n)
        .map(|_| {
            let src = trace[rng.gen_range(0..trace.len())];
            clock += dist::exponential(&mut rng, mean).max(1.0);
            TraceJob { submit: clock.round() as SimTime, ..src }
        })
        .collect()
}

/// Generate a fresh synthetic job set mimicking the configured trace
/// patterns.
pub fn synthetic_jobset(cfg: &ThetaConfig, n: usize, seed: u64) -> Vec<TraceJob> {
    let mut c = *cfg;
    c.num_jobs = n;
    c.generate(seed)
}

/// Mean inter-arrival time of a trace, in seconds (>= 1).
pub fn mean_interarrival(trace: &[TraceJob]) -> f64 {
    if trace.len() < 2 {
        return 1.0;
    }
    let span = trace.last().unwrap().submit - trace.first().unwrap().submit;
    (span as f64 / (trace.len() - 1) as f64).max(1.0)
}

/// Materialize a full curriculum: `sets_per_phase` job sets of
/// `jobs_per_set` jobs for each phase kind, in the order's sequence.
pub fn curriculum(
    order: CurriculumOrder,
    trace: &[TraceJob],
    cfg: &ThetaConfig,
    sets_per_phase: usize,
    jobs_per_set: usize,
    seed: u64,
) -> Vec<(JobSetKind, Vec<TraceJob>)> {
    let reals = real_jobsets(trace, sets_per_phase);
    let mut out = Vec::new();
    for (phase, kind) in order.0.iter().enumerate() {
        for i in 0..sets_per_phase {
            let set_seed = seed
                .wrapping_add(phase as u64 * 1_000_003)
                .wrapping_add(i as u64 * 7919);
            let set = match kind {
                JobSetKind::Sampled => sampled_jobset(trace, jobs_per_set, set_seed),
                JobSetKind::Real => {
                    let mut s = reals[i % reals.len()].clone();
                    s.truncate(jobs_per_set);
                    s
                }
                JobSetKind::Synthetic => synthetic_jobset(cfg, jobs_per_set, set_seed),
            };
            out.push((*kind, set));
        }
    }
    out
}

fn rebase(mut jobs: Vec<TraceJob>) -> Vec<TraceJob> {
    if let Some(t0) = jobs.first().map(|j| j.submit) {
        for j in &mut jobs {
            j.submit -= t0;
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceJob> {
        ThetaConfig::scaled(1200).generate(21)
    }

    #[test]
    fn six_distinct_orderings() {
        let all = CurriculumOrder::all();
        assert_eq!(all.len(), 6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_ne!(all[i], all[j]);
            }
        }
        assert!(all.contains(&CurriculumOrder::recommended()));
        assert_eq!(
            CurriculumOrder::recommended().label(),
            "Sampled+Real+Synthetic"
        );
    }

    #[test]
    fn real_jobsets_partition_and_rebase() {
        let t = trace();
        let sets = real_jobsets(&t, 4);
        assert_eq!(sets.len(), 4);
        let total: usize = sets.iter().map(|s| s.len()).sum();
        assert_eq!(total, t.len());
        for s in &sets {
            assert_eq!(s.first().unwrap().submit, 0, "each set rebased to 0");
            assert!(s.windows(2).all(|w| w[0].submit <= w[1].submit));
        }
    }

    #[test]
    fn sampled_jobset_controls_arrivals() {
        let t = trace();
        let s = sampled_jobset(&t, 400, 3);
        assert_eq!(s.len(), 400);
        assert!(s.windows(2).all(|w| w[0].submit <= w[1].submit));
        let sampled_mean = mean_interarrival(&s);
        let trace_mean = mean_interarrival(&t);
        assert!(
            (sampled_mean / trace_mean - 1.0).abs() < 0.25,
            "sampled mean {sampled_mean} vs trace {trace_mean}"
        );
        // Every sampled job's shape comes from the trace.
        for j in &s {
            assert!(t
                .iter()
                .any(|o| o.runtime == j.runtime && o.nodes == j.nodes));
        }
    }

    #[test]
    fn synthetic_jobset_has_requested_size() {
        let cfg = ThetaConfig::scaled(10);
        let s = synthetic_jobset(&cfg, 250, 5);
        assert_eq!(s.len(), 250);
    }

    #[test]
    fn curriculum_produces_phased_sets() {
        let t = trace();
        let cfg = ThetaConfig::scaled(10);
        let order = CurriculumOrder::recommended();
        let sets = curriculum(order, &t, &cfg, 2, 100, 7);
        assert_eq!(sets.len(), 6);
        assert_eq!(sets[0].0, JobSetKind::Sampled);
        assert_eq!(sets[2].0, JobSetKind::Real);
        assert_eq!(sets[4].0, JobSetKind::Synthetic);
        for (_, s) in &sets {
            assert!(s.len() <= 100 && !s.is_empty());
        }
    }

    #[test]
    fn curriculum_deterministic() {
        let t = trace();
        let cfg = ThetaConfig::scaled(10);
        let a = curriculum(CurriculumOrder::recommended(), &t, &cfg, 2, 50, 9);
        let b = curriculum(CurriculumOrder::recommended(), &t, &cfg, 2, 50, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_interarrival_degenerate_cases() {
        assert_eq!(mean_interarrival(&[]), 1.0);
        let one = vec![TraceJob {
            submit: 5,
            runtime: 1,
            estimate: 1,
            nodes: 1,
            status: crate::theta::SwfStatus::Completed,
        }];
        assert_eq!(mean_interarrival(&one), 1.0);
    }
}
