//! Probability distributions built on plain `rand`.
//!
//! The sanctioned offline dependency set excludes `rand_distr`, so the
//! handful of distributions the workload synthesizer needs are implemented
//! here: standard normal (Box–Muller), log-normal, log-uniform, truncated
//! variants, exponential inter-arrival times, and weighted discrete
//! choice.

use rand::Rng;

/// One standard-normal sample (Box–Muller transform), in `f64`.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Log-normal sample: `exp(N(mu, sigma²))`.
///
/// HPC job runtimes are classically modeled as log-normal (wide spread
/// from seconds to days, heavy right tail).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Log-normal sample truncated (by resampling, then clamping) to
/// `[lo, hi]`.
pub fn log_normal_clamped<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "log_normal_clamped: lo > hi");
    // A few resampling attempts keep the distribution shape; clamp as a
    // last resort so the function always terminates.
    for _ in 0..8 {
        let x = log_normal(rng, mu, sigma);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    log_normal(rng, mu, sigma).clamp(lo, hi)
}

/// Log-uniform sample on `[lo, hi]`: `exp(U(ln lo, ln hi))`.
///
/// This is the heavy-tailed shape used for burst-buffer request sizes
/// ("randomly selected from the original requests within a certain range"
/// where the original Darshan-derived requests span 1 GB–285 TB).
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "log_uniform: need 0 < lo <= hi");
    if lo == hi {
        return lo;
    }
    (rng.gen_range(lo.ln()..hi.ln())).exp()
}

/// Exponential sample with the given mean (inter-arrival times of a
/// Poisson process).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential: mean must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Draw an index according to non-negative weights.
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        !weights.is_empty() && total > 0.0,
        "weighted_index: weights must be non-empty with positive sum"
    );
    let mut t = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 5.0, 1.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of lognormal = exp(mu).
        assert!((median / 5.0f64.exp() - 1.0).abs() < 0.1, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn log_normal_clamped_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2_000 {
            let x = log_normal_clamped(&mut rng, 0.0, 3.0, 10.0, 100.0);
            assert!((10.0..=100.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn log_uniform_bounds_and_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| log_uniform(&mut rng, 1.0, 1000.0)).collect();
        assert!(xs.iter().all(|&x| (1.0..=1000.0).contains(&x)));
        // Under log-uniform, P(x < sqrt(hi*lo)) = 0.5.
        let below = xs.iter().filter(|&&x| x < (1000.0f64).sqrt()).count() as f64 / n as f64;
        assert!((below - 0.5).abs() < 0.03, "below {below}");
    }

    #[test]
    fn log_uniform_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(log_uniform(&mut rng, 7.0, 7.0), 7.0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 40_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight bucket never drawn");
        let f1 = counts[1] as f64 / 20_000.0;
        assert!((f1 - 0.3).abs() < 0.02, "bucket1 {f1}");
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_index_zero_sum_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        weighted_index(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn determinism_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| log_normal(&mut rng, 1.0, 1.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| log_normal(&mut rng, 1.0, 1.0)).collect()
        };
        assert_eq!(a, b);
    }
}
